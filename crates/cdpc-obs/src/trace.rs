//! A Chrome-trace-event timeline builder.
//!
//! [`TraceProbe`] records probed events into a bounded buffer and renders
//! them in the Trace Event Format (the JSON Chrome's `about:tracing` and
//! Perfetto's <https://ui.perfetto.dev> load directly): one lane (`tid`)
//! per CPU carrying stall spans — L2 misses by class, prefetch waits, TLB
//! misses, page faults, recolorings — plus a dedicated bus lane carrying
//! every transaction's occupancy. Timestamps are simulated cycles reported
//! as microseconds, so "1 µs" in the viewer is one simulated cycle.
//!
//! Hint-table lookups are counted but *not* buffered: they happen on every
//! fault-path policy query and would drown the timeline.

use std::fmt::Write as _;

use crate::probe::{BusKind, HintOutcome, MissClassId, PrefetchDropReason, Probe};

/// The `tid` of the synthetic bus lane (CPU lanes use their index).
pub const BUS_LANE: u32 = 1000;

/// Default cap on buffered events (~32 MB of rendered JSON at worst).
pub const DEFAULT_CAPACITY: usize = 250_000;

#[derive(Debug, Clone, PartialEq)]
struct TraceEvent {
    /// Event name shown in the viewer.
    name: &'static str,
    /// Trace category (miss class, bus kind, ... ) for filtering.
    category: &'static str,
    /// Lane: CPU index, or [`BUS_LANE`].
    lane: u32,
    /// Start, simulated cycles.
    start_cycle: u64,
    /// Duration, simulated cycles (0 renders as an instant-like sliver).
    duration: u64,
    /// Extra `args` fields, pre-rendered as `key:value` JSON pairs.
    args: Vec<(&'static str, String)>,
}

/// A [`Probe`] that buffers events and renders a Chrome trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProbe {
    events: Vec<TraceEvent>,
    capacity: usize,
    /// Events discarded after the buffer filled.
    dropped: u64,
    /// CPU lanes seen (for metadata naming), tracked as a max index.
    max_cpu: usize,
    bus_seen: bool,
    hint_lookups: u64,
    hint_hits: u64,
    observed: u64,
}

impl Default for TraceProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceProbe {
    /// A probe with the [default buffer cap](DEFAULT_CAPACITY).
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A probe buffering at most `capacity` events; further events are
    /// counted in [`dropped_events`](Self::dropped_events) but not stored.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            events: Vec::new(),
            capacity,
            dropped: 0,
            max_cpu: 0,
            bus_seen: false,
            hint_lookups: 0,
            hint_hits: 0,
            observed: 0,
        }
    }

    /// Events currently buffered.
    pub fn buffered_events(&self) -> usize {
        self.events.len()
    }

    /// Events discarded because the buffer was full.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Hint-table lookups observed (counted, never buffered).
    pub fn hint_lookups(&self) -> (u64, u64) {
        (self.hint_lookups, self.hint_hits)
    }

    fn record(&mut self, event: TraceEvent) {
        self.observed += 1;
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        if event.lane == BUS_LANE {
            self.bus_seen = true;
        } else {
            self.max_cpu = self.max_cpu.max(event.lane as usize);
        }
        self.events.push(event);
    }

    /// Renders the buffer as a Trace Event Format document:
    /// `{"traceEvents":[...]}` with `"X"` (complete) events and `"M"`
    /// thread-name metadata, loadable by Perfetto unmodified.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let emit = |out: &mut String, first: &mut bool, body: &str| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push('\n');
            out.push_str(body);
        };

        // Lane-name metadata first, so viewers label lanes immediately.
        for cpu in 0..=self.max_cpu {
            emit(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{cpu},\
                     \"args\":{{\"name\":\"cpu{cpu}\"}}}}"
                ),
            );
        }
        if self.bus_seen {
            emit(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{BUS_LANE},\
                     \"args\":{{\"name\":\"bus\"}}}}"
                ),
            );
        }

        for e in &self.events {
            let mut body = format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{},\"dur\":{}",
                e.name, e.category, e.lane, e.start_cycle, e.duration
            );
            if !e.args.is_empty() {
                body.push_str(",\"args\":{");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    let _ = write!(body, "\"{k}\":{v}");
                }
                body.push('}');
            }
            body.push('}');
            emit(&mut out, &mut first, &body);
        }
        out.push_str("\n]}\n");
        out
    }
}

impl Probe for TraceProbe {
    // A trace is exactly the global event interleaving; the parallel
    // engine cannot reproduce it and must fall back to the serial path.
    const ORDER_SENSITIVE: bool = true;

    fn on_engine_restart(&mut self) {
        self.events.clear();
        self.dropped = 0;
        self.max_cpu = 0;
        self.bus_seen = false;
        self.hint_lookups = 0;
        self.hint_hits = 0;
        self.observed = 0;
    }

    fn on_l2_miss(&mut self, cpu: usize, cycle: u64, class: MissClassId, stall_cycles: u64) {
        self.record(TraceEvent {
            name: "l2-miss",
            category: class.label(),
            lane: cpu as u32,
            start_cycle: cycle,
            duration: stall_cycles,
            args: vec![("class", format!("\"{}\"", class.label()))],
        });
    }

    fn on_bus_transaction(
        &mut self,
        cycle: u64,
        kind: BusKind,
        queue_cycles: u64,
        occupancy_cycles: u64,
    ) {
        self.record(TraceEvent {
            name: kind.label(),
            category: "bus",
            lane: BUS_LANE,
            // The transaction occupies the bus after any queueing delay.
            start_cycle: cycle + queue_cycles,
            duration: occupancy_cycles,
            args: vec![("queue_cycles", queue_cycles.to_string())],
        });
    }

    fn on_tlb_miss(&mut self, cpu: usize, cycle: u64, vpn: u64) {
        self.record(TraceEvent {
            name: "tlb-miss",
            category: "tlb",
            lane: cpu as u32,
            start_cycle: cycle,
            duration: 0,
            args: vec![("vpn", vpn.to_string())],
        });
    }

    fn on_prefetch_issued(
        &mut self,
        cpu: usize,
        cycle: u64,
        line_addr: u64,
        slot_stall_cycles: u64,
    ) {
        self.record(TraceEvent {
            name: "prefetch",
            category: "prefetch",
            lane: cpu as u32,
            start_cycle: cycle,
            duration: slot_stall_cycles,
            args: vec![("line", line_addr.to_string())],
        });
    }

    fn on_prefetch_dropped(
        &mut self,
        cpu: usize,
        cycle: u64,
        line_addr: u64,
        reason: PrefetchDropReason,
    ) {
        self.record(TraceEvent {
            name: "prefetch-drop",
            category: reason.label(),
            lane: cpu as u32,
            start_cycle: cycle,
            duration: 0,
            args: vec![("line", line_addr.to_string())],
        });
    }

    fn on_page_fault(
        &mut self,
        cpu: usize,
        cycle: u64,
        vpn: u64,
        color: u32,
        outcome: HintOutcome,
    ) {
        self.record(TraceEvent {
            name: "page-fault",
            category: outcome.label(),
            lane: cpu as u32,
            start_cycle: cycle,
            duration: 0,
            args: vec![
                ("vpn", vpn.to_string()),
                ("color", color.to_string()),
                ("outcome", format!("\"{}\"", outcome.label())),
            ],
        });
    }

    fn on_hint_lookup(&mut self, _vpn: u64, hit: bool) {
        self.observed += 1;
        self.hint_lookups += 1;
        if hit {
            self.hint_hits += 1;
        }
    }

    fn on_recolor(&mut self, cpu: usize, cycle: u64, vpn: u64, from_color: u32, to_color: u32) {
        self.record(TraceEvent {
            name: "recolor",
            category: "recolor",
            lane: cpu as u32,
            start_cycle: cycle,
            duration: 0,
            args: vec![
                ("vpn", vpn.to_string()),
                ("from", from_color.to_string()),
                ("to", to_color.to_string()),
            ],
        });
    }

    fn event_count(&self) -> u64 {
        self.observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    fn probe_with_activity() -> TraceProbe {
        let mut p = TraceProbe::new();
        p.on_l2_miss(0, 100, MissClassId::Conflict, 50);
        p.on_l2_miss(1, 120, MissClassId::Cold, 60);
        p.on_bus_transaction(100, BusKind::Data, 8, 40);
        p.on_tlb_miss(0, 90, 7);
        p.on_page_fault(1, 10, 3, 2, HintOutcome::Honored);
        p.on_recolor(0, 500, 3, 2, 5);
        p.on_hint_lookup(3, true);
        p
    }

    #[test]
    fn trace_is_valid_json_with_expected_lanes() {
        let p = probe_with_activity();
        let doc = JsonValue::parse(&p.to_chrome_trace()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 2 CPU lanes + bus lane metadata, then 6 buffered events.
        assert_eq!(events.len(), 3 + 6);
        let meta: Vec<&JsonValue> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .collect();
        assert_eq!(meta.len(), 3);
        assert!(meta
            .iter()
            .any(|m| m.get("tid").unwrap().as_u64() == Some(BUS_LANE as u64)));
        let spans: Vec<&JsonValue> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(spans.len(), 6);
        for s in &spans {
            assert!(s.get("ts").is_some() && s.get("dur").is_some());
        }
    }

    #[test]
    fn bus_span_starts_after_queueing() {
        let p = probe_with_activity();
        let doc = JsonValue::parse(&p.to_chrome_trace()).unwrap();
        let bus = doc
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e.get("cat").map(|c| c.as_str()) == Some(Some("bus")))
            .unwrap();
        assert_eq!(bus.get("ts").unwrap().as_u64(), Some(108));
        assert_eq!(bus.get("dur").unwrap().as_u64(), Some(40));
    }

    #[test]
    fn capacity_cap_counts_drops() {
        let mut p = TraceProbe::with_capacity(2);
        for i in 0..5 {
            p.on_tlb_miss(0, i, i);
        }
        assert_eq!(p.buffered_events(), 2);
        assert_eq!(p.dropped_events(), 3);
        assert_eq!(p.event_count(), 5);
    }

    #[test]
    fn hint_lookups_counted_not_buffered() {
        let mut p = TraceProbe::new();
        p.on_hint_lookup(1, true);
        p.on_hint_lookup(2, false);
        assert_eq!(p.buffered_events(), 0);
        assert_eq!(p.hint_lookups(), (2, 1));
        assert_eq!(p.event_count(), 2);
    }

    #[test]
    fn empty_trace_is_still_loadable() {
        let p = TraceProbe::new();
        let doc = JsonValue::parse(&p.to_chrome_trace()).unwrap();
        // One metadata record for cpu0 (max_cpu starts at 0).
        assert_eq!(doc.get("traceEvents").unwrap().as_array().unwrap().len(), 1);
    }
}
