//! The probe interface: fine-grained event callbacks from the simulation
//! stack.
//!
//! A [`Probe`] receives one callback per interesting event — L2 misses with
//! their class, bus transactions, TLB misses, prefetch issues and drops,
//! page faults with hint outcome, hint-table lookups, and dynamic
//! recolorings. Every method has an empty default body, and probes are
//! plugged in by generic parameter (static dispatch), so a [`NullProbe`]
//! run compiles to exactly the uninstrumented code.
//!
//! The event vocabulary deliberately uses plain integers (`cpu: usize`,
//! `vpn: u64`, `color: u32`) rather than the stack's newtypes: this crate
//! sits below every other CDPC crate and must not depend on them.

/// Miss classes as seen by probes (mirrors `cdpc_memsim::MissClass`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissClassId {
    /// First reference to a line by this CPU.
    Cold,
    /// Would miss even in a fully-associative cache of the same capacity.
    Capacity,
    /// Hits fully-associative, misses set-associative: a mapping conflict.
    Conflict,
    /// Re-fetch of data another CPU actually wrote.
    TrueSharing,
    /// Re-fetch caused by writes to *other* words of the same line.
    FalseSharing,
}

impl MissClassId {
    /// Stable lowercase label used by every exporter.
    pub fn label(self) -> &'static str {
        match self {
            MissClassId::Cold => "cold",
            MissClassId::Capacity => "capacity",
            MissClassId::Conflict => "conflict",
            MissClassId::TrueSharing => "true-sharing",
            MissClassId::FalseSharing => "false-sharing",
        }
    }

    /// Position of this class within [`MissClassId::ALL`] (the canonical
    /// dense-tensor index).
    pub fn index(self) -> usize {
        match self {
            MissClassId::Cold => 0,
            MissClassId::Capacity => 1,
            MissClassId::Conflict => 2,
            MissClassId::TrueSharing => 3,
            MissClassId::FalseSharing => 4,
        }
    }

    /// All classes, in the canonical export order.
    pub const ALL: [MissClassId; 5] = [
        MissClassId::Cold,
        MissClassId::Capacity,
        MissClassId::Conflict,
        MissClassId::TrueSharing,
        MissClassId::FalseSharing,
    ];
}

/// Bus transaction categories (mirrors `cdpc_memsim::bus::BusUse`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusKind {
    /// Demand/prefetch data transfer.
    Data,
    /// Write-back of a dirty victim line.
    Writeback,
    /// Ownership upgrade (no data).
    Upgrade,
}

impl BusKind {
    /// Stable lowercase label used by every exporter.
    pub fn label(self) -> &'static str {
        match self {
            BusKind::Data => "data",
            BusKind::Writeback => "writeback",
            BusKind::Upgrade => "upgrade",
        }
    }
}

/// Why a prefetch instruction was dropped instead of issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetchDropReason {
    /// Target page not resident in the TLB.
    TlbMiss,
    /// Line already cached or already in flight.
    Resident,
}

impl PrefetchDropReason {
    /// Stable lowercase label used by every exporter.
    pub fn label(self) -> &'static str {
        match self {
            PrefetchDropReason::TlbMiss => "tlb-miss",
            PrefetchDropReason::Resident => "resident",
        }
    }
}

/// How a page fault's color preference was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HintOutcome {
    /// The policy expressed no color preference.
    NoPreference,
    /// The preferred color was honored exactly.
    Honored,
    /// Memory pressure forced a different color.
    Fallback,
}

impl HintOutcome {
    /// Stable lowercase label used by every exporter.
    pub fn label(self) -> &'static str {
        match self {
            HintOutcome::NoPreference => "no-preference",
            HintOutcome::Honored => "honored",
            HintOutcome::Fallback => "fallback",
        }
    }
}

/// Coherence state of an external-cache line as seen by probes (mirrors
/// `cdpc_memsim::Mesi`, plus `Invalid` for drops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Sole dirty copy; memory is stale.
    Modified,
    /// Sole clean copy.
    Exclusive,
    /// One of possibly many clean copies.
    Shared,
    /// The copy was dropped (invalidation, eviction, or page flush).
    Invalid,
}

impl LineState {
    /// Stable lowercase label used by every exporter.
    pub fn label(self) -> &'static str {
        match self {
            LineState::Modified => "modified",
            LineState::Exclusive => "exclusive",
            LineState::Shared => "shared",
            LineState::Invalid => "invalid",
        }
    }
}

/// Receiver of simulation events.
///
/// All methods default to no-ops; implement only what you need. Cycle
/// arguments are the issuing CPU's local clock (global wall-clock order is
/// approximate across CPUs, exact per CPU — the same guarantee the
/// simulator itself gives).
pub trait Probe {
    /// True when this probe's output depends on the *global interleaving*
    /// of events across CPUs (e.g. an event tracer). The parallel
    /// execution engine preserves per-CPU event order and the serial order
    /// of all cross-CPU (coherence) events, but may deliver commutative
    /// private events (TLB misses) out of global order; an order-sensitive
    /// probe forces the bit-identical serial path instead.
    const ORDER_SENSITIVE: bool = false;

    /// True when this probe consumes [`Probe::on_run_batch`] events. The
    /// parallel engine does not make scheduler decisions op-by-op, so it
    /// only records per-op clocks and replays the serial batching
    /// discipline when a batch-sensitive probe is attached.
    const BATCH_SENSITIVE: bool = false;

    /// The parallel execution engine hit a condition it cannot reproduce
    /// bit-identically (a cross-CPU conflict inside a speculated private
    /// span) and is about to re-run the *entire* run serially. Probes that
    /// accumulate state across a run must reset to their initial state
    /// here; the serial re-run then replays every event from scratch.
    #[inline]
    fn on_engine_restart(&mut self) {}

    /// An external-cache miss of `class` by `cpu`, stalling
    /// `stall_cycles`.
    #[inline]
    fn on_l2_miss(&mut self, cpu: usize, cycle: u64, class: MissClassId, stall_cycles: u64) {
        let _ = (cpu, cycle, class, stall_cycles);
    }

    /// A bus transaction requested at `cycle`, queued `queue_cycles`, then
    /// occupying the bus `occupancy_cycles`.
    #[inline]
    fn on_bus_transaction(
        &mut self,
        cycle: u64,
        kind: BusKind,
        queue_cycles: u64,
        occupancy_cycles: u64,
    ) {
        let _ = (cycle, kind, queue_cycles, occupancy_cycles);
    }

    /// A demand-access TLB miss by `cpu` on virtual page `vpn`.
    #[inline]
    fn on_tlb_miss(&mut self, cpu: usize, cycle: u64, vpn: u64) {
        let _ = (cpu, cycle, vpn);
    }

    /// A prefetch issued to the memory system for the L2 line at
    /// `line_addr`; `slot_stall_cycles` is nonzero when all slots were
    /// busy.
    #[inline]
    fn on_prefetch_issued(
        &mut self,
        cpu: usize,
        cycle: u64,
        line_addr: u64,
        slot_stall_cycles: u64,
    ) {
        let _ = (cpu, cycle, line_addr, slot_stall_cycles);
    }

    /// A prefetch dropped before reaching the memory system.
    #[inline]
    fn on_prefetch_dropped(
        &mut self,
        cpu: usize,
        cycle: u64,
        line_addr: u64,
        reason: PrefetchDropReason,
    ) {
        let _ = (cpu, cycle, line_addr, reason);
    }

    /// A page fault served for `cpu` on virtual page `vpn`, backed by a
    /// physical page of `color`.
    #[inline]
    fn on_page_fault(
        &mut self,
        cpu: usize,
        cycle: u64,
        vpn: u64,
        color: u32,
        outcome: HintOutcome,
    ) {
        let _ = (cpu, cycle, vpn, color, outcome);
    }

    /// A hint-table lookup during policy resolution; `hit` when the table
    /// held a color for `vpn` (miss means fallback to the base policy).
    #[inline]
    fn on_hint_lookup(&mut self, vpn: u64, hit: bool) {
        let _ = (vpn, hit);
    }

    /// A dynamic recoloring: `vpn` moved from `from_color` to `to_color`.
    #[inline]
    fn on_recolor(&mut self, cpu: usize, cycle: u64, vpn: u64, from_color: u32, to_color: u32) {
        let _ = (cpu, cycle, vpn, from_color, to_color);
    }

    /// `cpu`'s external-cache copy of the line at `line_addr` changed
    /// coherence state (fills, upgrades, downgrades, invalidations; a
    /// [`LineState::Invalid`] event means the copy was dropped).
    #[inline]
    fn on_line_state(&mut self, cpu: usize, line_addr: u64, state: LineState) {
        let _ = (cpu, line_addr, state);
    }

    /// Every cached line of the physical page at `page_base` has been
    /// flushed (individual drops were reported via [`Probe::on_line_state`]
    /// first) and its directory rights revoked.
    #[inline]
    fn on_page_flush(&mut self, page_base: u64, page_bytes: u64) {
        let _ = (page_base, page_bytes);
    }

    /// An external-cache miss with full attribution context: the source
    /// array (`ATTR_OTHER_ARRAY` for code or untracked regions), the cache
    /// color of the physical page the miss landed in, its class, and the
    /// service latency. Fired alongside [`Probe::on_l2_miss`] whenever the
    /// memory system has a region map installed.
    #[inline]
    fn on_classified_miss(
        &mut self,
        cpu: usize,
        cycle: u64,
        array_id: u32,
        color: u32,
        class: MissClassId,
        latency_cycles: u64,
    ) {
        let _ = (cpu, cycle, array_id, color, class, latency_cycles);
    }

    /// The run loop is about to execute measured phase `index`, which
    /// stands for `count` repetitions. Events between this and the matching
    /// [`Probe::on_phase_end`] belong to the phase; events outside any
    /// phase window (warm-up, prefault) are not part of the measured run.
    #[inline]
    fn on_phase_start(&mut self, index: usize, count: u64) {
        let _ = (index, count);
    }

    /// The run loop finished measured phase `index`; `end_cycle` is the
    /// maximum CPU clock at the closing barrier.
    #[inline]
    fn on_phase_end(&mut self, index: usize, end_cycle: u64) {
        let _ = (index, end_cycle);
    }

    /// The run-loop scheduler executed a batch of `ops` consecutive
    /// operations for one CPU without a scheduling decision in between.
    #[inline]
    fn on_run_batch(&mut self, cpu: usize, ops: u64) {
        let _ = (cpu, ops);
    }

    /// Total events this probe has observed (0 for probes that don't
    /// count). Used for simulator self-profiling (peak event volume).
    fn event_count(&self) -> u64 {
        0
    }
}

/// The `array_id` probes receive for a miss outside every mapped region
/// (instruction fetches, runtime structures).
pub const ATTR_OTHER_ARRAY: u32 = u32::MAX;

/// The disabled probe: every callback is a no-op the optimizer removes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// Forwarding impl so call sites can hand out `&mut probe` without giving
/// up ownership (the run loop and the memory system share one probe this
/// way).
impl<P: Probe + ?Sized> Probe for &mut P {
    const ORDER_SENSITIVE: bool = P::ORDER_SENSITIVE;
    const BATCH_SENSITIVE: bool = P::BATCH_SENSITIVE;

    #[inline]
    fn on_engine_restart(&mut self) {
        (**self).on_engine_restart();
    }

    #[inline]
    fn on_l2_miss(&mut self, cpu: usize, cycle: u64, class: MissClassId, stall_cycles: u64) {
        (**self).on_l2_miss(cpu, cycle, class, stall_cycles);
    }

    #[inline]
    fn on_bus_transaction(
        &mut self,
        cycle: u64,
        kind: BusKind,
        queue_cycles: u64,
        occupancy_cycles: u64,
    ) {
        (**self).on_bus_transaction(cycle, kind, queue_cycles, occupancy_cycles);
    }

    #[inline]
    fn on_tlb_miss(&mut self, cpu: usize, cycle: u64, vpn: u64) {
        (**self).on_tlb_miss(cpu, cycle, vpn);
    }

    #[inline]
    fn on_prefetch_issued(
        &mut self,
        cpu: usize,
        cycle: u64,
        line_addr: u64,
        slot_stall_cycles: u64,
    ) {
        (**self).on_prefetch_issued(cpu, cycle, line_addr, slot_stall_cycles);
    }

    #[inline]
    fn on_prefetch_dropped(
        &mut self,
        cpu: usize,
        cycle: u64,
        line_addr: u64,
        reason: PrefetchDropReason,
    ) {
        (**self).on_prefetch_dropped(cpu, cycle, line_addr, reason);
    }

    #[inline]
    fn on_page_fault(
        &mut self,
        cpu: usize,
        cycle: u64,
        vpn: u64,
        color: u32,
        outcome: HintOutcome,
    ) {
        (**self).on_page_fault(cpu, cycle, vpn, color, outcome);
    }

    #[inline]
    fn on_hint_lookup(&mut self, vpn: u64, hit: bool) {
        (**self).on_hint_lookup(vpn, hit);
    }

    #[inline]
    fn on_recolor(&mut self, cpu: usize, cycle: u64, vpn: u64, from_color: u32, to_color: u32) {
        (**self).on_recolor(cpu, cycle, vpn, from_color, to_color);
    }

    #[inline]
    fn on_line_state(&mut self, cpu: usize, line_addr: u64, state: LineState) {
        (**self).on_line_state(cpu, line_addr, state);
    }

    #[inline]
    fn on_page_flush(&mut self, page_base: u64, page_bytes: u64) {
        (**self).on_page_flush(page_base, page_bytes);
    }

    #[inline]
    fn on_classified_miss(
        &mut self,
        cpu: usize,
        cycle: u64,
        array_id: u32,
        color: u32,
        class: MissClassId,
        latency_cycles: u64,
    ) {
        (**self).on_classified_miss(cpu, cycle, array_id, color, class, latency_cycles);
    }

    #[inline]
    fn on_phase_start(&mut self, index: usize, count: u64) {
        (**self).on_phase_start(index, count);
    }

    #[inline]
    fn on_phase_end(&mut self, index: usize, end_cycle: u64) {
        (**self).on_phase_end(index, end_cycle);
    }

    #[inline]
    fn on_run_batch(&mut self, cpu: usize, ops: u64) {
        (**self).on_run_batch(cpu, ops);
    }

    fn event_count(&self) -> u64 {
        (**self).event_count()
    }
}

/// A probe that may be absent: `Some(p)` forwards every event to `p`,
/// `None` is a no-op. Lets call sites compose an optional probe into a
/// tuple without enumerating every on/off combination as its own type.
impl<P: Probe> Probe for Option<P> {
    const ORDER_SENSITIVE: bool = P::ORDER_SENSITIVE;
    const BATCH_SENSITIVE: bool = P::BATCH_SENSITIVE;

    #[inline]
    fn on_engine_restart(&mut self) {
        if let Some(p) = self {
            p.on_engine_restart();
        }
    }

    #[inline]
    fn on_l2_miss(&mut self, cpu: usize, cycle: u64, class: MissClassId, stall_cycles: u64) {
        if let Some(p) = self {
            p.on_l2_miss(cpu, cycle, class, stall_cycles);
        }
    }

    #[inline]
    fn on_bus_transaction(
        &mut self,
        cycle: u64,
        kind: BusKind,
        queue_cycles: u64,
        occupancy_cycles: u64,
    ) {
        if let Some(p) = self {
            p.on_bus_transaction(cycle, kind, queue_cycles, occupancy_cycles);
        }
    }

    #[inline]
    fn on_tlb_miss(&mut self, cpu: usize, cycle: u64, vpn: u64) {
        if let Some(p) = self {
            p.on_tlb_miss(cpu, cycle, vpn);
        }
    }

    #[inline]
    fn on_prefetch_issued(
        &mut self,
        cpu: usize,
        cycle: u64,
        line_addr: u64,
        slot_stall_cycles: u64,
    ) {
        if let Some(p) = self {
            p.on_prefetch_issued(cpu, cycle, line_addr, slot_stall_cycles);
        }
    }

    #[inline]
    fn on_prefetch_dropped(
        &mut self,
        cpu: usize,
        cycle: u64,
        line_addr: u64,
        reason: PrefetchDropReason,
    ) {
        if let Some(p) = self {
            p.on_prefetch_dropped(cpu, cycle, line_addr, reason);
        }
    }

    #[inline]
    fn on_page_fault(
        &mut self,
        cpu: usize,
        cycle: u64,
        vpn: u64,
        color: u32,
        outcome: HintOutcome,
    ) {
        if let Some(p) = self {
            p.on_page_fault(cpu, cycle, vpn, color, outcome);
        }
    }

    #[inline]
    fn on_hint_lookup(&mut self, vpn: u64, hit: bool) {
        if let Some(p) = self {
            p.on_hint_lookup(vpn, hit);
        }
    }

    #[inline]
    fn on_recolor(&mut self, cpu: usize, cycle: u64, vpn: u64, from_color: u32, to_color: u32) {
        if let Some(p) = self {
            p.on_recolor(cpu, cycle, vpn, from_color, to_color);
        }
    }

    #[inline]
    fn on_line_state(&mut self, cpu: usize, line_addr: u64, state: LineState) {
        if let Some(p) = self {
            p.on_line_state(cpu, line_addr, state);
        }
    }

    #[inline]
    fn on_page_flush(&mut self, page_base: u64, page_bytes: u64) {
        if let Some(p) = self {
            p.on_page_flush(page_base, page_bytes);
        }
    }

    #[inline]
    fn on_classified_miss(
        &mut self,
        cpu: usize,
        cycle: u64,
        array_id: u32,
        color: u32,
        class: MissClassId,
        latency_cycles: u64,
    ) {
        if let Some(p) = self {
            p.on_classified_miss(cpu, cycle, array_id, color, class, latency_cycles);
        }
    }

    #[inline]
    fn on_phase_start(&mut self, index: usize, count: u64) {
        if let Some(p) = self {
            p.on_phase_start(index, count);
        }
    }

    #[inline]
    fn on_phase_end(&mut self, index: usize, end_cycle: u64) {
        if let Some(p) = self {
            p.on_phase_end(index, end_cycle);
        }
    }

    #[inline]
    fn on_run_batch(&mut self, cpu: usize, ops: u64) {
        if let Some(p) = self {
            p.on_run_batch(cpu, ops);
        }
    }

    fn event_count(&self) -> u64 {
        self.as_ref().map_or(0, |p| p.event_count())
    }
}

/// Generates the fan-out combinator impls: every event is delivered to
/// each element in order. Lets one run feed independent probes (say, a
/// sanitizer, a tracer, and an attribution sink) without any of them
/// knowing about the others; still static dispatch, so
/// `(SanitizerProbe, NullProbe)` costs exactly a `SanitizerProbe`.
macro_rules! tuple_probe {
    ($($p:ident . $idx:tt),+) => {
        impl<$($p: Probe),+> Probe for ($($p,)+) {
            const ORDER_SENSITIVE: bool = $($p::ORDER_SENSITIVE)||+;
            const BATCH_SENSITIVE: bool = $($p::BATCH_SENSITIVE)||+;

            #[inline]
            fn on_engine_restart(&mut self) {
                $(self.$idx.on_engine_restart();)+
            }

            #[inline]
            fn on_l2_miss(&mut self, cpu: usize, cycle: u64, class: MissClassId, stall: u64) {
                $(self.$idx.on_l2_miss(cpu, cycle, class, stall);)+
            }

            #[inline]
            fn on_bus_transaction(&mut self, cycle: u64, kind: BusKind, queue: u64, occ: u64) {
                $(self.$idx.on_bus_transaction(cycle, kind, queue, occ);)+
            }

            #[inline]
            fn on_tlb_miss(&mut self, cpu: usize, cycle: u64, vpn: u64) {
                $(self.$idx.on_tlb_miss(cpu, cycle, vpn);)+
            }

            #[inline]
            fn on_prefetch_issued(&mut self, cpu: usize, cycle: u64, line: u64, stall: u64) {
                $(self.$idx.on_prefetch_issued(cpu, cycle, line, stall);)+
            }

            #[inline]
            fn on_prefetch_dropped(
                &mut self,
                cpu: usize,
                cycle: u64,
                line_addr: u64,
                reason: PrefetchDropReason,
            ) {
                $(self.$idx.on_prefetch_dropped(cpu, cycle, line_addr, reason);)+
            }

            #[inline]
            fn on_page_fault(
                &mut self,
                cpu: usize,
                cycle: u64,
                vpn: u64,
                color: u32,
                outcome: HintOutcome,
            ) {
                $(self.$idx.on_page_fault(cpu, cycle, vpn, color, outcome);)+
            }

            #[inline]
            fn on_hint_lookup(&mut self, vpn: u64, hit: bool) {
                $(self.$idx.on_hint_lookup(vpn, hit);)+
            }

            #[inline]
            fn on_recolor(&mut self, cpu: usize, cycle: u64, vpn: u64, from: u32, to: u32) {
                $(self.$idx.on_recolor(cpu, cycle, vpn, from, to);)+
            }

            #[inline]
            fn on_line_state(&mut self, cpu: usize, line_addr: u64, state: LineState) {
                $(self.$idx.on_line_state(cpu, line_addr, state);)+
            }

            #[inline]
            fn on_page_flush(&mut self, page_base: u64, page_bytes: u64) {
                $(self.$idx.on_page_flush(page_base, page_bytes);)+
            }

            #[inline]
            fn on_classified_miss(
                &mut self,
                cpu: usize,
                cycle: u64,
                array_id: u32,
                color: u32,
                class: MissClassId,
                latency_cycles: u64,
            ) {
                $(self.$idx.on_classified_miss(cpu, cycle, array_id, color, class, latency_cycles);)+
            }

            #[inline]
            fn on_phase_start(&mut self, index: usize, count: u64) {
                $(self.$idx.on_phase_start(index, count);)+
            }

            #[inline]
            fn on_phase_end(&mut self, index: usize, end_cycle: u64) {
                $(self.$idx.on_phase_end(index, end_cycle);)+
            }

            #[inline]
            fn on_run_batch(&mut self, cpu: usize, ops: u64) {
                $(self.$idx.on_run_batch(cpu, ops);)+
            }

            fn event_count(&self) -> u64 {
                0 $(+ self.$idx.event_count())+
            }
        }
    };
}

tuple_probe!(A.0, B.1);
tuple_probe!(A.0, B.1, C.2);

/// A probe that counts events by kind — cheap enough to leave on, detailed
/// enough for self-profiling and smoke tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingProbe {
    /// External-cache misses, all classes.
    pub l2_misses: u64,
    /// Misses by class, indexed per [`MissClassId::ALL`] order.
    pub misses_by_class: [u64; 5],
    /// Bus transactions, all kinds.
    pub bus_transactions: u64,
    /// Demand TLB misses.
    pub tlb_misses: u64,
    /// Prefetches issued.
    pub prefetches_issued: u64,
    /// Prefetches dropped (either reason).
    pub prefetches_dropped: u64,
    /// Page faults served.
    pub page_faults: u64,
    /// Page faults whose color preference was honored.
    pub faults_honored: u64,
    /// Hint-table lookups.
    pub hint_lookups: u64,
    /// Hint-table lookups that found a hint.
    pub hint_hits: u64,
    /// Dynamic recolorings.
    pub recolorings: u64,
}

impl CountingProbe {
    /// A fresh all-zero counter set.
    pub fn new() -> Self {
        Self::default()
    }
}

fn class_index(class: MissClassId) -> usize {
    MissClassId::ALL
        .iter()
        .position(|&c| c == class)
        .expect("ALL covers every class")
}

impl Probe for CountingProbe {
    fn on_engine_restart(&mut self) {
        *self = Self::default();
    }

    fn on_l2_miss(&mut self, _cpu: usize, _cycle: u64, class: MissClassId, _stall: u64) {
        self.l2_misses += 1;
        self.misses_by_class[class_index(class)] += 1;
    }

    fn on_bus_transaction(&mut self, _cycle: u64, _kind: BusKind, _queue: u64, _occ: u64) {
        self.bus_transactions += 1;
    }

    fn on_tlb_miss(&mut self, _cpu: usize, _cycle: u64, _vpn: u64) {
        self.tlb_misses += 1;
    }

    fn on_prefetch_issued(&mut self, _cpu: usize, _cycle: u64, _line: u64, _stall: u64) {
        self.prefetches_issued += 1;
    }

    fn on_prefetch_dropped(
        &mut self,
        _cpu: usize,
        _cycle: u64,
        _line: u64,
        _reason: PrefetchDropReason,
    ) {
        self.prefetches_dropped += 1;
    }

    fn on_page_fault(
        &mut self,
        _cpu: usize,
        _cycle: u64,
        _vpn: u64,
        _color: u32,
        outcome: HintOutcome,
    ) {
        self.page_faults += 1;
        if outcome == HintOutcome::Honored {
            self.faults_honored += 1;
        }
    }

    fn on_hint_lookup(&mut self, _vpn: u64, hit: bool) {
        self.hint_lookups += 1;
        if hit {
            self.hint_hits += 1;
        }
    }

    fn on_recolor(&mut self, _cpu: usize, _cycle: u64, _vpn: u64, _from: u32, _to: u32) {
        self.recolorings += 1;
    }

    fn event_count(&self) -> u64 {
        self.l2_misses
            + self.bus_transactions
            + self.tlb_misses
            + self.prefetches_issued
            + self.prefetches_dropped
            + self.page_faults
            + self.hint_lookups
            + self.recolorings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_probe_accepts_everything() {
        let mut p = NullProbe;
        p.on_l2_miss(0, 1, MissClassId::Conflict, 50);
        p.on_bus_transaction(1, BusKind::Data, 0, 40);
        p.on_hint_lookup(3, true);
        assert_eq!(p.event_count(), 0);
    }

    #[test]
    fn counting_probe_counts_by_kind() {
        let mut p = CountingProbe::new();
        p.on_l2_miss(0, 1, MissClassId::Conflict, 50);
        p.on_l2_miss(1, 2, MissClassId::Cold, 60);
        p.on_bus_transaction(1, BusKind::Writeback, 2, 40);
        p.on_tlb_miss(0, 3, 7);
        p.on_prefetch_issued(0, 4, 0x80, 0);
        p.on_prefetch_dropped(0, 5, 0x80, PrefetchDropReason::Resident);
        p.on_page_fault(0, 6, 9, 3, HintOutcome::Honored);
        p.on_page_fault(0, 7, 10, 1, HintOutcome::Fallback);
        p.on_hint_lookup(9, true);
        p.on_hint_lookup(10, false);
        p.on_recolor(0, 8, 9, 3, 5);
        assert_eq!(p.l2_misses, 2);
        assert_eq!(p.misses_by_class[class_index(MissClassId::Conflict)], 1);
        assert_eq!(p.bus_transactions, 1);
        assert_eq!(p.page_faults, 2);
        assert_eq!(p.faults_honored, 1);
        assert_eq!(p.hint_lookups, 2);
        assert_eq!(p.hint_hits, 1);
        assert_eq!(p.recolorings, 1);
        assert_eq!(p.event_count(), 11);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut p = CountingProbe::new();
        {
            let fwd = &mut p;
            fwd.on_tlb_miss(0, 0, 0);
            assert_eq!(fwd.event_count(), 1);
        }
        assert_eq!(p.tlb_misses, 1);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(MissClassId::TrueSharing.label(), "true-sharing");
        assert_eq!(BusKind::Writeback.label(), "writeback");
        assert_eq!(PrefetchDropReason::TlbMiss.label(), "tlb-miss");
        assert_eq!(HintOutcome::Fallback.label(), "fallback");
        assert_eq!(LineState::Exclusive.label(), "exclusive");
        assert_eq!(LineState::Invalid.label(), "invalid");
    }

    #[derive(Default)]
    struct StateRecorder {
        states: Vec<(usize, u64, LineState)>,
        flushes: Vec<(u64, u64)>,
    }

    impl Probe for StateRecorder {
        fn on_line_state(&mut self, cpu: usize, line_addr: u64, state: LineState) {
            self.states.push((cpu, line_addr, state));
        }

        fn on_page_flush(&mut self, page_base: u64, page_bytes: u64) {
            self.flushes.push((page_base, page_bytes));
        }

        fn event_count(&self) -> u64 {
            (self.states.len() + self.flushes.len()) as u64
        }
    }

    #[test]
    fn line_state_events_forward_through_mut_ref() {
        let mut p = StateRecorder::default();
        {
            let fwd = &mut p;
            fwd.on_line_state(1, 0x100, LineState::Modified);
            fwd.on_page_flush(0x1000, 4096);
        }
        assert_eq!(p.states, vec![(1, 0x100, LineState::Modified)]);
        assert_eq!(p.flushes, vec![(0x1000, 4096)]);
    }

    #[test]
    fn tuple_probe_fans_out_to_both() {
        let mut pair = (StateRecorder::default(), CountingProbe::new());
        pair.on_line_state(0, 0x80, LineState::Shared);
        pair.on_tlb_miss(0, 1, 7);
        pair.on_page_flush(0x2000, 4096);
        assert_eq!(pair.0.states.len(), 1);
        assert_eq!(pair.0.flushes.len(), 1);
        assert_eq!(pair.1.tlb_misses, 1);
        // StateRecorder saw 2 events, CountingProbe 1.
        assert_eq!(pair.event_count(), 3);
    }
}
