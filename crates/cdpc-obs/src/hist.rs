//! Log-bucketed histograms for latency- and size-shaped quantities.
//!
//! An HDR-style histogram: values are binned into buckets whose width
//! grows geometrically, giving a bounded relative error (≤ 12.5% here —
//! eight sub-buckets per octave) over the full `u64` range with a fixed
//! 496-slot table. Recording is two shifts and an add — cheap enough to
//! sit on the miss path — and the table never allocates after
//! construction, which the zero-allocation run test depends on.
//!
//! The intended quantities are miss service latencies, inter-miss
//! distances (cycles between consecutive misses of one CPU), and run-loop
//! batch sizes; anything non-negative with a heavy tail fits.

/// Values below `LINEAR_MAX` get exact unit-width buckets.
const LINEAR_MAX: u64 = 8;
/// Sub-buckets per octave above the linear range (2^3).
const SUB_BITS: u32 = 3;
/// Total bucket count: 8 linear + 61 octaves × 8 sub-buckets.
const BUCKETS: usize = LINEAR_MAX as usize + (64 - SUB_BITS as usize) * (1 << SUB_BITS);

/// Bucket index for a value. Exact below [`LINEAR_MAX`], then the octave
/// (position of the leading bit) selects a group of eight sub-buckets and
/// the next three bits select within it.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let sub = (v >> (exp - SUB_BITS)) & ((1 << SUB_BITS) - 1);
        LINEAR_MAX as usize + ((exp - SUB_BITS) as usize) * (1 << SUB_BITS) + sub as usize
    }
}

/// Smallest value that lands in bucket `b` (the inverse of [`bucket_of`]).
#[inline]
fn bucket_floor(b: usize) -> u64 {
    if b < LINEAR_MAX as usize {
        b as u64
    } else {
        let oct = (b - LINEAR_MAX as usize) >> SUB_BITS;
        let sub = (b - LINEAR_MAX as usize) & ((1 << SUB_BITS) - 1);
        (LINEAR_MAX + sub as u64) << oct
    }
}

/// A fixed-size log-bucketed histogram of `u64` samples.
#[derive(Clone)]
pub struct LogHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("sum", &self.sum)
            .finish()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical samples in one step.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_of(v)] += n;
        self.count += n;
        self.sum += v.wrapping_mul(n);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self` with every count multiplied by `k` (used
    /// when one simulated pass stands for `k` repetitions of a phase).
    pub fn merge_scaled(&mut self, other: &LogHistogram, k: u64) {
        if other.count == 0 || k == 0 {
            return;
        }
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src * k;
        }
        self.count += other.count * k;
        self.sum = self.sum.wrapping_add(other.sum.wrapping_mul(k));
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Resets to empty without releasing storage.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all samples (wrapping, for overflow safety at extreme scale).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The quantile `q` in [0, 1]: the smallest bucket floor such that at
    /// least `q` of the samples fall at or below the bucket, clamped to
    /// the observed min/max so exact extremes read exactly.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        if target >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_floor(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Iterates the non-empty buckets as `(floor, count)` pairs in
    /// ascending value order (the export format).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (bucket_floor(b), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..8 {
            h.record(v);
        }
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets, (0..8).map(|v| (v, 1)).collect::<Vec<_>>());
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn bucket_floor_inverts_bucket_of() {
        for v in [0, 1, 7, 8, 9, 15, 16, 17, 100, 1000, 1 << 20, u64::MAX] {
            let b = bucket_of(v);
            let floor = bucket_floor(b);
            assert!(floor <= v, "floor {floor} must not exceed {v}");
            if b + 1 < BUCKETS {
                assert!(bucket_floor(b + 1) > v, "next bucket starts above {v}");
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Any value in a bucket is within 1/8 of the bucket floor.
        for shift in 3..60 {
            let v = (1u64 << shift) + (1 << (shift - 1)) + 3;
            let floor = bucket_floor(bucket_of(v));
            assert!((v - floor) as f64 / v as f64 <= 0.125);
        }
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
        let p50 = h.quantile(0.5);
        // Log buckets: p50 lands in the bucket containing 500.
        assert!((448..=512).contains(&p50), "p50 was {p50}");
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn merge_scaled_multiplies_counts() {
        let mut phase = LogHistogram::new();
        phase.record(10);
        phase.record(100);
        let mut total = LogHistogram::new();
        total.record(7);
        total.merge_scaled(&phase, 3);
        assert_eq!(total.count(), 7);
        assert_eq!(total.sum(), 7 + 3 * 110);
        assert_eq!(total.min(), 7);
        assert_eq!(total.max(), 100);
        let by_floor: Vec<_> = total.nonzero_buckets().collect();
        assert!(by_floor.contains(&(7, 1)));
        assert!(by_floor.iter().any(|&(lo, c)| lo <= 10 && c == 3));
    }

    #[test]
    fn clear_resets_without_reallocating() {
        let mut h = LogHistogram::new();
        h.record_n(42, 5);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }
}
