//! The static race detector.
//!
//! A distributed loop runs its iterations concurrently on all processors
//! with a barrier at the end, so the race domain is *one statement*: two
//! processors' footprints of the same array may not overlap unless the
//! overlap is boundary communication the compiler summarized (a stencil
//! halo read of a neighbor's units — the paper's shift/rotate patterns).
//!
//! Rules:
//!
//! * `race/write-write` — two processors' write footprints intersect
//!   (mismatched partition units, or a whole-array write in a distributed
//!   loop).
//! * `race/read-write` — a processor reads bytes another writes, and the
//!   overlap is not a stencil-halo exchange between neighbors.
//! * `race/irregular-write` — an irregular (gather/scatter) write in a
//!   distributed loop: no static footprint exists, so disjointness cannot
//!   be established. Programs that synchronize such writes by other means
//!   annotate `allow_lint("race/irregular-write")`.

use cdpc_compiler::ir::{Access, AccessPattern, Program};
use cdpc_compiler::parallelize::{ParallelPlan, StmtSchedule};

use crate::diag::{Diagnostic, Location, Report, Severity};
use crate::footprint::{cpu_intervals, intersect, Interval};

/// Rule id: overlapping write footprints.
pub const RULE_WRITE_WRITE: &str = "race/write-write";
/// Rule id: read/write overlap not explained by communication.
pub const RULE_READ_WRITE: &str = "race/read-write";
/// Rule id: statically unboundable write in a distributed loop.
pub const RULE_IRREGULAR_WRITE: &str = "race/irregular-write";

/// Runs the race lints over every distributed statement.
pub fn check(program: &Program, plan: &ParallelPlan, report: &mut Report) {
    let p = plan.num_cpus();
    if p < 2 {
        return;
    }
    for (pi, phase) in program.phases.iter().enumerate() {
        for (si, stmt) in phase.stmts.iter().enumerate() {
            let StmtSchedule::Distributed { policy, direction } = plan.schedule(pi, si) else {
                continue;
            };
            let nest = &stmt.nest;
            let loc = |array: usize| {
                Location::at(
                    phase.name.clone(),
                    nest.name.clone(),
                    program
                        .arrays
                        .get(array)
                        .map_or_else(|| format!("#{array}"), |d| d.name.clone()),
                )
            };
            // Rules already reported for an array in this statement (one
            // finding per array per rule, not one per CPU pair).
            let mut reported: Vec<(usize, &str)> = Vec::new();
            let mut emit = |report: &mut Report, array: usize, rule: &'static str, msg: String| {
                if !reported.contains(&(array, rule)) {
                    reported.push((array, rule));
                    report.push(Diagnostic::new(rule, Severity::Error, loc(array), msg));
                }
            };

            for acc in &nest.accesses {
                if !acc.is_write {
                    continue;
                }
                match acc.pattern {
                    AccessPattern::Irregular { .. } => emit(
                        report,
                        acc.array.0,
                        RULE_IRREGULAR_WRITE,
                        format!(
                            "irregular write in distributed loop `{}`: the footprint has no \
                             static bound, so cross-processor disjointness cannot be \
                             established",
                            nest.name
                        ),
                    ),
                    AccessPattern::WholeArray => emit(
                        report,
                        acc.array.0,
                        RULE_WRITE_WRITE,
                        format!(
                            "whole-array write in distributed loop `{}`: all {p} processors \
                             write every byte concurrently",
                            nest.name
                        ),
                    ),
                    _ => {}
                }
            }

            for (i, a) in nest.accesses.iter().enumerate() {
                for b in &nest.accesses[i..] {
                    if a.array != b.array
                        || (!a.is_write && !b.is_write)
                        || is_unbounded_or_covered(a)
                        || is_unbounded_or_covered(b)
                    {
                        continue;
                    }
                    if let Some((rule, msg)) = first_overlap(
                        a,
                        b,
                        nest.iterations,
                        array_bytes(program, a.array.0),
                        policy,
                        direction,
                        p,
                    ) {
                        emit(report, a.array.0, rule, msg);
                    }
                }
            }
        }
    }
}

/// Accesses the pairwise footprint check skips: irregular (no footprint)
/// and whole-array writes (already reported as `race/write-write`).
fn is_unbounded_or_covered(a: &Access) -> bool {
    matches!(a.pattern, AccessPattern::Irregular { .. })
        || (a.is_write && matches!(a.pattern, AccessPattern::WholeArray))
}

fn array_bytes(program: &Program, array: usize) -> u64 {
    program.arrays.get(array).map_or(0, |d| d.bytes)
}

/// Searches CPU pairs for an unexplained overlap between two accesses,
/// returning the rule and message of the first one found.
#[allow(clippy::too_many_arguments)]
fn first_overlap(
    a: &Access,
    b: &Access,
    iterations: u64,
    bytes: u64,
    policy: cdpc_core::summary::PartitionPolicy,
    direction: cdpc_core::summary::PartitionDirection,
    p: usize,
) -> Option<(&'static str, String)> {
    if iterations == 0 || unit_of(a) == Some(0) || unit_of(b) == Some(0) {
        return None; // structural lints own degenerate shapes
    }
    for c1 in 0..p {
        let fa = cpu_intervals(
            a.pattern, iterations, bytes, policy, direction, c1, p, a.is_write,
        )?;
        for c2 in 0..p {
            if c1 == c2 {
                continue;
            }
            let fb = cpu_intervals(
                b.pattern, iterations, bytes, policy, direction, c2, p, b.is_write,
            )?;
            let overlap = intersect(&fa, &fb);
            if overlap.is_empty() {
                continue;
            }
            if a.is_write && b.is_write {
                return Some((
                    RULE_WRITE_WRITE,
                    format!(
                        "CPU {c1} and CPU {c2} write footprints overlap at bytes {}; \
                         partition units {} vs {} tile the array differently",
                        fmt_intervals(&overlap),
                        unit_str(a),
                        unit_str(b),
                    ),
                ));
            }
            let (reader, writer, rc, wc) = if a.is_write {
                (b, a, c2, c1)
            } else {
                (a, b, c1, c2)
            };
            if halo_explains(
                reader, writer, iterations, bytes, policy, direction, rc, wc, p, &overlap,
            ) {
                continue;
            }
            return Some((
                RULE_READ_WRITE,
                format!(
                    "CPU {rc} reads bytes {} that CPU {wc} writes concurrently, and the overlap \
                     is not a neighbor halo exchange the communication summary covers",
                    fmt_intervals(&overlap),
                ),
            ));
        }
    }
    None
}

/// `true` when an R/W overlap is exactly the boundary communication the
/// compiler would summarize: the reader is a stencil, the overlap lies
/// entirely in its halo extension (outside its own core units), the unit
/// sizes agree, and the two CPUs are neighbors (or the wraparound pair).
#[allow(clippy::too_many_arguments)]
fn halo_explains(
    reader: &Access,
    writer: &Access,
    iterations: u64,
    bytes: u64,
    policy: cdpc_core::summary::PartitionPolicy,
    direction: cdpc_core::summary::PartitionDirection,
    rc: usize,
    wc: usize,
    p: usize,
    overlap: &[Interval],
) -> bool {
    let AccessPattern::Stencil {
        unit_bytes,
        halo_units,
        wraparound,
    } = reader.pattern
    else {
        return false;
    };
    if halo_units == 0 || unit_of(writer) != Some(unit_bytes) {
        return false;
    }
    let adjacent = rc.abs_diff(wc) == 1 || (wraparound && rc.min(wc) == 0 && rc.max(wc) == p - 1);
    if !adjacent {
        return false;
    }
    // Core footprint: what the reader *owns* (its write region). A stencil
    // is affine, so `cpu_intervals` cannot return `None` here.
    let Some(core) = cpu_intervals(
        reader.pattern,
        iterations,
        bytes,
        policy,
        direction,
        rc,
        p,
        true,
    ) else {
        return false;
    };
    intersect(overlap, &core).is_empty()
}

fn unit_of(a: &Access) -> Option<u64> {
    match a.pattern {
        AccessPattern::Partitioned { unit_bytes } | AccessPattern::Stencil { unit_bytes, .. } => {
            Some(unit_bytes)
        }
        _ => None,
    }
}

fn unit_str(a: &Access) -> String {
    match unit_of(a) {
        Some(u) => format!("{u} B"),
        None => "whole-array".to_string(),
    }
}

fn fmt_intervals(iv: &[Interval]) -> String {
    iv.iter()
        .map(|(a, b)| format!("[{a:#x}, {b:#x})"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdpc_compiler::ir::{AccessPattern as P, LoopNest, Phase, Stmt, StmtKind};
    use cdpc_compiler::parallelize::{parallelize, ParallelizeOptions};

    fn one_stmt_program(kind: StmtKind, bytes: u64, accesses: Vec<Access>) -> Program {
        let mut p = Program::new("race-test");
        let a = p.array("A", bytes);
        let mut nest = LoopNest::new("sweep", 8, 100);
        for acc in accesses {
            let mut acc = acc;
            acc.array = a;
            nest = nest.with_access(acc);
        }
        p.phase(Phase {
            name: "main".into(),
            stmts: vec![Stmt { kind, nest }],
            count: 1,
        });
        p
    }

    fn lint(program: &Program, cpus: usize) -> Report {
        let plan = parallelize(
            program,
            &ParallelizeOptions {
                num_cpus: cpus,
                suppress_threshold: 0,
                ..ParallelizeOptions::default()
            },
        );
        let mut report = Report::new(&program.name, cpus, &program.lint_allows);
        check(program, &plan, &mut report);
        report
    }

    fn rules(report: &Report) -> Vec<&str> {
        report.diagnostics.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn mismatched_write_units_race() {
        let p = one_stmt_program(
            StmtKind::Parallel,
            1600,
            vec![
                Access::write(
                    cdpc_compiler::ir::ArrayRef(0),
                    P::Partitioned { unit_bytes: 100 },
                ),
                Access::write(
                    cdpc_compiler::ir::ArrayRef(0),
                    P::Partitioned { unit_bytes: 150 },
                ),
            ],
        );
        let r = lint(&p, 2);
        assert_eq!(rules(&r), vec![RULE_WRITE_WRITE]);
        assert!(r.has_errors());
    }

    #[test]
    fn irregular_write_flagged() {
        let p = one_stmt_program(
            StmtKind::Parallel,
            800,
            vec![Access::write(
                cdpc_compiler::ir::ArrayRef(0),
                P::Irregular {
                    touches_per_iter: 4,
                },
            )],
        );
        let r = lint(&p, 4);
        assert_eq!(rules(&r), vec![RULE_IRREGULAR_WRITE]);
    }

    #[test]
    fn whole_array_write_flagged() {
        let p = one_stmt_program(
            StmtKind::Parallel,
            800,
            vec![Access::write(cdpc_compiler::ir::ArrayRef(0), P::WholeArray)],
        );
        let r = lint(&p, 4);
        assert_eq!(rules(&r), vec![RULE_WRITE_WRITE]);
        assert!(r.diagnostics[0].message.contains("whole-array write"));
    }

    #[test]
    fn whole_array_read_of_partitioned_writes_races() {
        let p = one_stmt_program(
            StmtKind::Parallel,
            800,
            vec![
                Access::read(cdpc_compiler::ir::ArrayRef(0), P::WholeArray),
                Access::write(
                    cdpc_compiler::ir::ArrayRef(0),
                    P::Partitioned { unit_bytes: 100 },
                ),
            ],
        );
        let r = lint(&p, 4);
        assert_eq!(rules(&r), vec![RULE_READ_WRITE]);
    }

    #[test]
    fn disjoint_partitioned_writes_are_clean() {
        let p = one_stmt_program(
            StmtKind::Parallel,
            800,
            vec![
                Access::read(
                    cdpc_compiler::ir::ArrayRef(0),
                    P::Partitioned { unit_bytes: 100 },
                ),
                Access::write(
                    cdpc_compiler::ir::ArrayRef(0),
                    P::Partitioned { unit_bytes: 100 },
                ),
            ],
        );
        for cpus in [2, 4, 8] {
            assert!(rules(&lint(&p, cpus)).is_empty(), "cpus={cpus}");
        }
    }

    #[test]
    fn stencil_halo_reads_are_explained() {
        let p = one_stmt_program(
            StmtKind::Parallel,
            800,
            vec![
                Access::read(
                    cdpc_compiler::ir::ArrayRef(0),
                    P::Stencil {
                        unit_bytes: 100,
                        halo_units: 1,
                        wraparound: true,
                    },
                ),
                Access::write(
                    cdpc_compiler::ir::ArrayRef(0),
                    P::Partitioned { unit_bytes: 100 },
                ),
            ],
        );
        let r = lint(&p, 4);
        assert!(rules(&r).is_empty(), "got {:?}", rules(&r));
    }

    #[test]
    fn stencil_with_mismatched_write_unit_races() {
        // Same shape as the clean case above, but the writer's tiling does
        // not match the stencil's units, so the overlap is not a halo.
        let p = one_stmt_program(
            StmtKind::Parallel,
            1600,
            vec![
                Access::read(
                    cdpc_compiler::ir::ArrayRef(0),
                    P::Stencil {
                        unit_bytes: 100,
                        halo_units: 1,
                        wraparound: false,
                    },
                ),
                Access::write(
                    cdpc_compiler::ir::ArrayRef(0),
                    P::Partitioned { unit_bytes: 150 },
                ),
            ],
        );
        let r = lint(&p, 4);
        assert_eq!(rules(&r), vec![RULE_READ_WRITE]);
    }

    #[test]
    fn non_distributed_statements_are_not_checked() {
        for kind in [StmtKind::Sequential, StmtKind::FineGrain] {
            let p = one_stmt_program(
                kind,
                800,
                vec![Access::write(
                    cdpc_compiler::ir::ArrayRef(0),
                    P::Irregular {
                        touches_per_iter: 4,
                    },
                )],
            );
            assert!(rules(&lint(&p, 4)).is_empty(), "{kind:?}");
        }
    }

    #[test]
    fn single_cpu_has_no_races() {
        let p = one_stmt_program(
            StmtKind::Parallel,
            800,
            vec![Access::write(cdpc_compiler::ir::ArrayRef(0), P::WholeArray)],
        );
        assert!(rules(&lint(&p, 1)).is_empty());
    }
}
