//! The diagnostics vocabulary: severities, locations, findings, reports.
//!
//! Every lint and the runtime sanitizer speak this one language. A
//! [`Diagnostic`] names its rule (`"race/write-write"`,
//! `"conflict/color-pressure"`, ...), carries a severity, points at a
//! program location (phase / loop / array — the IR has no source lines),
//! and renders both as human text and as JSON via `cdpc_obs::json`.

use cdpc_obs::JsonValue;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, never actionable by itself.
    Info,
    /// Suspicious: likely performance loss, not a correctness problem.
    Warn,
    /// A correctness problem (or an inconsistency that would corrupt
    /// downstream results). Unallowed Errors fail `--lint` runs and CI.
    Error,
}

impl Severity {
    /// Stable lowercase label used by every exporter.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// Where in the program a finding points. All parts are optional: a
/// summary-level finding may name only an array; a sanitizer finding
/// names none (it carries cycle/line context in its message).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Location {
    /// Phase name (e.g. `"timestep"`).
    pub phase: Option<String>,
    /// Loop-nest name within the phase.
    pub loop_name: Option<String>,
    /// Array name.
    pub array: Option<String>,
}

impl Location {
    /// A location naming just an array.
    pub fn array(name: impl Into<String>) -> Self {
        Location {
            array: Some(name.into()),
            ..Location::default()
        }
    }

    /// A location naming phase, loop, and array.
    pub fn at(
        phase: impl Into<String>,
        loop_name: impl Into<String>,
        array: impl Into<String>,
    ) -> Self {
        Location {
            phase: Some(phase.into()),
            loop_name: Some(loop_name.into()),
            array: Some(array.into()),
        }
    }

    /// `phase/loop/array` with `-` for missing parts; `<global>` when all
    /// parts are missing.
    pub fn path(&self) -> String {
        if self.phase.is_none() && self.loop_name.is_none() && self.array.is_none() {
            return "<global>".to_string();
        }
        let part = |o: &Option<String>| o.clone().unwrap_or_else(|| "-".to_string());
        format!(
            "{}/{}/{}",
            part(&self.phase),
            part(&self.loop_name),
            part(&self.array)
        )
    }
}

/// A machine-applicable repair for a finding: a concrete program edit the
/// conflict prover has verified (or proposes) to remove the predicted
/// problem. Fix-its round-trip through the compiler — `predict` applies
/// them to the IR, recompiles, and re-proves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FixIt {
    /// Grow `array` by `pad_pages` pages so the layout shifts every later
    /// array to different colors.
    PadArray {
        /// Array to pad.
        array: String,
        /// Pages to add to its size.
        pad_pages: u64,
    },
    /// Re-run the coloring with compiler hints (the CDPC policy) instead of
    /// the default modulo coloring — the hinted plan proves conflict-free.
    RecolorRegion {
        /// Array whose pages the hints recolor.
        array: String,
    },
    /// Split `phase` so the named arrays are not live in the same working
    /// set (advisory: per-statement footprints fit, their union does not).
    SplitPhase {
        /// Phase to split.
        phase: String,
    },
}

impl FixIt {
    /// Stable machine-readable kind label.
    pub fn kind(&self) -> &'static str {
        match self {
            FixIt::PadArray { .. } => "pad-array",
            FixIt::RecolorRegion { .. } => "recolor-region",
            FixIt::SplitPhase { .. } => "split-phase",
        }
    }

    /// One-line human rendering.
    pub fn render(&self) -> String {
        match self {
            FixIt::PadArray { array, pad_pages } => {
                format!("pad array {array} by {pad_pages} page(s)")
            }
            FixIt::RecolorRegion { array } => {
                format!("recolor region of {array} with compiler hints")
            }
            FixIt::SplitPhase { phase } => format!("split phase {phase}"),
        }
    }

    /// The fix-it as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.push("kind", JsonValue::Str(self.kind().into()));
        match self {
            FixIt::PadArray { array, pad_pages } => {
                obj.push("array", JsonValue::Str(array.clone()));
                obj.push("pad_pages", JsonValue::UInt(*pad_pages));
            }
            FixIt::RecolorRegion { array } => {
                obj.push("array", JsonValue::Str(array.clone()));
            }
            FixIt::SplitPhase { phase } => {
                obj.push("phase", JsonValue::Str(phase.clone()));
            }
        }
        obj
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id, `family/name` (e.g. `"race/write-write"`).
    pub rule: String,
    /// Severity.
    pub severity: Severity,
    /// Program location.
    pub location: Location,
    /// Human-readable explanation, including the suggested fix when the
    /// rule has one.
    pub message: String,
    /// `true` when the program carries an `allow_lint` annotation for this
    /// rule: the finding is still reported but does not fail the run.
    pub allowed: bool,
    /// Machine-applicable repairs, best first (empty for most lints).
    pub fixits: Vec<FixIt>,
    /// Percent confidence in the finding, when the producing analysis
    /// over-approximates (irregular accesses degrade the prover's exact
    /// equations to bounds). `None` means the rule is exact by construction.
    pub confidence: Option<u8>,
}

impl Diagnostic {
    /// Creates a finding (not yet allowed; [`Report::push`] applies the
    /// program's annotations).
    pub fn new(
        rule: impl Into<String>,
        severity: Severity,
        location: Location,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule: rule.into(),
            severity,
            location,
            message: message.into(),
            allowed: false,
            fixits: Vec::new(),
            confidence: None,
        }
    }

    /// Attaches a machine-applicable repair (builder style).
    #[must_use]
    pub fn with_fixit(mut self, fixit: FixIt) -> Self {
        self.fixits.push(fixit);
        self
    }

    /// Sets the percent confidence (builder style); clamped to 100.
    #[must_use]
    pub fn with_confidence(mut self, percent: u8) -> Self {
        self.confidence = Some(percent.min(100));
        self
    }

    /// `rule severity location: message` on one line, with confidence and
    /// fix-its appended when present.
    pub fn render(&self) -> String {
        let allowed = if self.allowed { " (allowed)" } else { "" };
        let mut line = format!(
            "{} [{}]{} {}: {}",
            self.severity.label(),
            self.rule,
            allowed,
            self.location.path(),
            self.message
        );
        if let Some(c) = self.confidence {
            line.push_str(&format!(" (confidence {c}%)"));
        }
        for f in &self.fixits {
            line.push_str(&format!("; fix: {}", f.render()));
        }
        line
    }

    /// The finding as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.push("rule", JsonValue::Str(self.rule.clone()));
        obj.push("severity", JsonValue::Str(self.severity.label().into()));
        let mut loc = JsonValue::object();
        let opt = |o: &Option<String>| match o {
            Some(s) => JsonValue::Str(s.clone()),
            None => JsonValue::Null,
        };
        loc.push("phase", opt(&self.location.phase));
        loc.push("loop", opt(&self.location.loop_name));
        loc.push("array", opt(&self.location.array));
        obj.push("location", loc);
        obj.push("message", JsonValue::Str(self.message.clone()));
        obj.push("allowed", JsonValue::Bool(self.allowed));
        // Prover extensions serialize only when present, so the classic
        // lint shape (and its golden files) is unchanged.
        if let Some(c) = self.confidence {
            obj.push("confidence", JsonValue::UInt(u64::from(c)));
        }
        if !self.fixits.is_empty() {
            obj.push(
                "fixits",
                JsonValue::Array(self.fixits.iter().map(FixIt::to_json).collect()),
            );
        }
        obj
    }
}

/// All findings for one analyzed program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Program name.
    pub program: String,
    /// Processor count the plan was analyzed for.
    pub num_cpus: usize,
    /// Findings in discovery order (structural, races, false sharing,
    /// conflicts).
    pub diagnostics: Vec<Diagnostic>,
    /// Rule ids the program's `allow_lint` annotations cover.
    pub allows: Vec<String>,
}

impl Report {
    /// An empty report for a program.
    pub fn new(program: impl Into<String>, num_cpus: usize, allows: &[String]) -> Self {
        Report {
            program: program.into(),
            num_cpus,
            diagnostics: Vec::new(),
            allows: allows.to_vec(),
        }
    }

    /// Adds a finding, marking it allowed when the program's annotations
    /// cover its rule.
    pub fn push(&mut self, mut d: Diagnostic) {
        d.allowed = self.allows.iter().any(|a| a == &d.rule);
        self.diagnostics.push(d);
    }

    /// Sorts findings by (rule, location path, message) — a stable, total
    /// order independent of lint execution order or thread count, so
    /// exported reports (`results/lint_report.json`, SARIF) diff
    /// deterministically.
    pub fn sort_stable(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (&a.rule, a.location.path(), &a.message).cmp(&(&b.rule, b.location.path(), &b.message))
        });
    }

    /// Findings of one severity.
    pub fn of_severity(&self, s: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.severity == s)
    }

    /// Findings with a given rule id.
    pub fn with_rule<'a>(&'a self, rule: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.rule == rule)
    }

    /// Error findings *not* covered by an allow annotation — the ones that
    /// fail `--lint` and CI.
    pub fn unallowed_errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error && !d.allowed)
    }

    /// `true` when [`Report::unallowed_errors`] is non-empty.
    pub fn has_errors(&self) -> bool {
        self.unallowed_errors().next().is_some()
    }

    /// Counts as `(errors, warnings, infos)`, allowed Errors excluded from
    /// the error count.
    pub fn counts(&self) -> (usize, usize, usize) {
        (
            self.unallowed_errors().count(),
            self.of_severity(Severity::Warn).count(),
            self.of_severity(Severity::Info).count(),
        )
    }

    /// Multi-line human rendering (one line per finding plus a summary).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        let (e, w, i) = self.counts();
        out.push_str(&format!(
            "{}: {e} error(s), {w} warning(s), {i} info(s)\n",
            self.program
        ));
        out
    }

    /// The report as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.push("program", JsonValue::Str(self.program.clone()));
        obj.push("num_cpus", JsonValue::UInt(self.num_cpus as u64));
        let (e, w, i) = self.counts();
        obj.push("errors", JsonValue::UInt(e as u64));
        obj.push("warnings", JsonValue::UInt(w as u64));
        obj.push("infos", JsonValue::UInt(i as u64));
        obj.push(
            "allows",
            JsonValue::Array(self.allows.iter().cloned().map(JsonValue::Str).collect()),
        );
        obj.push(
            "diagnostics",
            JsonValue::Array(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
        );
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_labels() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
        assert_eq!(Severity::Error.label(), "error");
    }

    #[test]
    fn location_paths() {
        assert_eq!(Location::default().path(), "<global>");
        assert_eq!(Location::array("A").path(), "-/-/A");
        assert_eq!(Location::at("ph", "lp", "A").path(), "ph/lp/A");
    }

    #[test]
    fn allow_annotations_downgrade_errors() {
        let mut r = Report::new("p", 4, &["race/irregular-write".to_string()]);
        r.push(Diagnostic::new(
            "race/irregular-write",
            Severity::Error,
            Location::array("L"),
            "irregular write",
        ));
        r.push(Diagnostic::new(
            "race/write-write",
            Severity::Error,
            Location::array("M"),
            "overlap",
        ));
        assert_eq!(r.diagnostics.len(), 2);
        assert!(r.diagnostics[0].allowed);
        assert!(!r.diagnostics[1].allowed);
        assert_eq!(r.unallowed_errors().count(), 1);
        assert!(r.has_errors());
        assert!(r.diagnostics[0].render().contains("(allowed)"));
    }

    /// Golden test: the JSON shape is a contract (CI and the `analyze`
    /// binary parse it back).
    #[test]
    fn diagnostic_json_golden() {
        let d = Diagnostic::new(
            "sharing/false-boundary",
            Severity::Warn,
            Location::at("timestep", "sweep", "A"),
            "partition boundary at 0x1234 shares an L2 line",
        );
        assert_eq!(
            d.to_json().to_string_compact(),
            r#"{"rule":"sharing/false-boundary","severity":"warn","location":{"phase":"timestep","loop":"sweep","array":"A"},"message":"partition boundary at 0x1234 shares an L2 line","allowed":false}"#
        );
    }

    /// Golden test: prover extensions (confidence, fix-its) serialize only
    /// when present, and in this exact shape.
    #[test]
    fn fixit_json_golden() {
        let d = Diagnostic::new(
            "predict/conflict-cell",
            Severity::Warn,
            Location::at("timestep", "sweep", "A"),
            "A and B collide on color 3",
        )
        .with_confidence(100)
        .with_fixit(FixIt::PadArray {
            array: "A".into(),
            pad_pages: 1,
        })
        .with_fixit(FixIt::SplitPhase {
            phase: "timestep".into(),
        });
        assert_eq!(
            d.to_json().to_string_compact(),
            r#"{"rule":"predict/conflict-cell","severity":"warn","location":{"phase":"timestep","loop":"sweep","array":"A"},"message":"A and B collide on color 3","allowed":false,"confidence":100,"fixits":[{"kind":"pad-array","array":"A","pad_pages":1},{"kind":"split-phase","phase":"timestep"}]}"#
        );
        assert_eq!(
            d.render(),
            "warn [predict/conflict-cell] timestep/sweep/A: A and B collide on color 3 \
             (confidence 100%); fix: pad array A by 1 page(s); fix: split phase timestep"
        );
        assert_eq!(
            FixIt::RecolorRegion { array: "B".into() }
                .to_json()
                .to_string_compact(),
            r#"{"kind":"recolor-region","array":"B"}"#
        );
    }

    #[test]
    fn sort_stable_orders_by_rule_path_message() {
        let mut r = Report::new("p", 4, &[]);
        r.push(Diagnostic::new(
            "sharing/false-boundary",
            Severity::Warn,
            Location::array("B"),
            "z",
        ));
        r.push(Diagnostic::new(
            "conflict/color-pressure",
            Severity::Warn,
            Location::array("B"),
            "m",
        ));
        r.push(Diagnostic::new(
            "conflict/color-pressure",
            Severity::Warn,
            Location::array("A"),
            "m",
        ));
        r.push(Diagnostic::new(
            "conflict/color-pressure",
            Severity::Warn,
            Location::array("A"),
            "a",
        ));
        r.sort_stable();
        let keys: Vec<(String, String, String)> = r
            .diagnostics
            .iter()
            .map(|d| (d.rule.clone(), d.location.path(), d.message.clone()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(r.diagnostics[0].message, "a");
        assert_eq!(r.diagnostics[3].rule, "sharing/false-boundary");
    }

    #[test]
    fn report_json_golden_roundtrips() {
        let mut r = Report::new("101.tomcatv", 8, &[]);
        r.push(Diagnostic::new(
            "conflict/color-pressure",
            Severity::Warn,
            Location::array("X"),
            "2 pages per color",
        ));
        let json = r.to_json();
        assert_eq!(
            json.to_string_compact(),
            r#"{"program":"101.tomcatv","num_cpus":8,"errors":0,"warnings":1,"infos":0,"allows":[],"diagnostics":[{"rule":"conflict/color-pressure","severity":"warn","location":{"phase":null,"loop":null,"array":"X"},"message":"2 pages per color","allowed":false}]}"#
        );
        // And it survives the parser (the `analyze` binary's consumers).
        let parsed = JsonValue::parse(&json.to_string_pretty()).expect("valid JSON");
        assert_eq!(
            parsed.get("program").and_then(|v| v.as_str()),
            Some("101.tomcatv")
        );
        assert_eq!(
            parsed
                .get("diagnostics")
                .and_then(|v| v.as_array())
                .map(<[JsonValue]>::len),
            Some(1)
        );
    }
}
