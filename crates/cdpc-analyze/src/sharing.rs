//! The false-sharing lint.
//!
//! When a partition boundary falls in the middle of an external-cache
//! line, the two neighboring processors write disjoint bytes of the
//! *same* line and ping-pong its ownership — the paper's false-sharing
//! stall component, paid on every sweep without any true communication.
//! The boundary addresses are fully static (array base + boundary unit x
//! unit size), so the lint predicts exactly which boundaries do this.
//!
//! Rules (both `Warn`: performance, not correctness):
//!
//! * `sharing/false-boundary` — a partition boundary of a written array
//!   is not line-aligned.
//! * `sharing/array-straddle` — a written array's base itself is not
//!   line-aligned, so even perfectly sized units straddle lines.

use cdpc_compiler::ir::{AccessPattern, Program};
use cdpc_compiler::layout::DataLayout;
use cdpc_compiler::parallelize::{ParallelPlan, StmtSchedule};

use crate::diag::{Diagnostic, Location, Report, Severity};
use crate::footprint::unit_range;
use crate::machine::MachineModel;

/// Rule id: partition boundary inside an L2 line.
pub const RULE_FALSE_BOUNDARY: &str = "sharing/false-boundary";
/// Rule id: written array whose base is not line-aligned.
pub const RULE_ARRAY_STRADDLE: &str = "sharing/array-straddle";

/// Runs the false-sharing lints over every distributed statement.
pub fn check(
    program: &Program,
    plan: &ParallelPlan,
    layout: &DataLayout,
    machine: &MachineModel,
    report: &mut Report,
) {
    let p = plan.num_cpus();
    let line = machine.l2_line_bytes;
    if p < 2 || line == 0 {
        return;
    }
    let mut straddle_flagged: Vec<usize> = Vec::new();
    for (pi, phase) in program.phases.iter().enumerate() {
        for (si, stmt) in phase.stmts.iter().enumerate() {
            let StmtSchedule::Distributed { policy, direction } = plan.schedule(pi, si) else {
                continue;
            };
            let nest = &stmt.nest;
            let mut boundary_flagged: Vec<usize> = Vec::new();
            for acc in &nest.accesses {
                if !acc.is_write {
                    continue;
                }
                let unit = match acc.pattern {
                    AccessPattern::Partitioned { unit_bytes }
                    | AccessPattern::Stencil { unit_bytes, .. } => unit_bytes,
                    _ => continue,
                };
                if unit == 0 || nest.iterations == 0 || acc.array.0 >= layout.bases.len() {
                    continue;
                }
                let Some(decl) = program.arrays.get(acc.array.0) else {
                    continue;
                };
                let base = layout.base(acc.array).0;
                let loc = Location::at(phase.name.clone(), nest.name.clone(), decl.name.clone());

                if !base.is_multiple_of(line) && !straddle_flagged.contains(&acc.array.0) {
                    straddle_flagged.push(acc.array.0);
                    report.push(Diagnostic::new(
                        RULE_ARRAY_STRADDLE,
                        Severity::Warn,
                        loc.clone(),
                        format!(
                            "written array `{}` starts at {base:#x}, not a multiple of the \
                             {line} B L2 line; every partition boundary straddles a line \
                             (use the aligned layout)",
                            decl.name
                        ),
                    ));
                }

                if boundary_flagged.contains(&acc.array.0) {
                    continue;
                }
                // Interior partition boundaries: a unit index `b` where
                // one CPU's range ends and a neighbor's begins.
                let mut boundaries: Vec<u64> = Vec::new();
                for cpu in 0..p {
                    let (lo, hi) = unit_range(policy, direction, nest.iterations, cpu, p);
                    for b in [lo, hi] {
                        if b > 0 && b < nest.iterations && !boundaries.contains(&b) {
                            boundaries.push(b);
                        }
                    }
                }
                let bad: Vec<u64> = boundaries
                    .iter()
                    .map(|b| base + b * unit)
                    .filter(|addr| addr % line != 0)
                    .collect();
                if let Some(&first) = bad.first() {
                    boundary_flagged.push(acc.array.0);
                    report.push(Diagnostic::new(
                        RULE_FALSE_BOUNDARY,
                        Severity::Warn,
                        loc,
                        format!(
                            "{} of {} partition boundaries of `{}` fall inside a {line} B L2 \
                             line (first at {first:#x}); neighboring processors will false-share \
                             those lines every sweep. Pad the {unit} B unit to a line multiple \
                             or enable the aligned layout.",
                            bad.len(),
                            boundaries.len(),
                            decl.name
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdpc_compiler::ir::{Access, AccessPattern as P, LoopNest, Phase, Stmt, StmtKind};
    use cdpc_compiler::layout::{layout, LayoutMode, LayoutOptions};
    use cdpc_compiler::parallelize::{parallelize, ParallelizeOptions};

    fn program(unit: u64, is_write: bool, stencil: bool) -> Program {
        let mut p = Program::new("sharing-test");
        let a = p.array("A", unit * 64);
        let pattern = if stencil {
            P::Stencil {
                unit_bytes: unit,
                halo_units: 1,
                wraparound: false,
            }
        } else {
            P::Partitioned { unit_bytes: unit }
        };
        let acc = if is_write {
            Access::write(a, pattern)
        } else {
            Access::read(a, pattern)
        };
        p.phase(Phase {
            name: "main".into(),
            stmts: vec![Stmt {
                kind: StmtKind::Parallel,
                nest: LoopNest::new("sweep", 64, 100).with_access(acc),
            }],
            count: 1,
        });
        p
    }

    fn lint(program: &Program, cpus: usize, mode: LayoutMode) -> Report {
        let plan = parallelize(
            program,
            &ParallelizeOptions {
                num_cpus: cpus,
                suppress_threshold: 0,
                ..ParallelizeOptions::default()
            },
        );
        let lay = layout(
            program,
            &LayoutOptions {
                mode,
                ..LayoutOptions::default()
            },
        );
        let mut report = Report::new(&program.name, cpus, &program.lint_allows);
        check(
            program,
            &plan,
            &lay,
            &MachineModel::paper_base(cpus),
            &mut report,
        );
        report
    }

    fn rules(r: &Report) -> Vec<&str> {
        r.diagnostics.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn odd_units_false_share_boundaries() {
        // 100 B units: boundaries at multiples of 100 B, never multiples
        // of the 128 B line.
        let p = program(100, true, false);
        let r = lint(&p, 4, LayoutMode::Aligned);
        assert_eq!(rules(&r), vec![RULE_FALSE_BOUNDARY]);
        assert_eq!(r.counts(), (0, 1, 0));
    }

    #[test]
    fn stencil_writes_also_checked() {
        let p = program(100, true, true);
        let r = lint(&p, 4, LayoutMode::Aligned);
        assert_eq!(rules(&r), vec![RULE_FALSE_BOUNDARY]);
    }

    #[test]
    fn misaligned_base_straddles() {
        // An unaligned layout packs arrays back to back; give the array a
        // base that is not a line multiple by hand.
        let p = program(1024, true, false);
        let plan = parallelize(
            &p,
            &ParallelizeOptions {
                num_cpus: 4,
                suppress_threshold: 0,
                ..ParallelizeOptions::default()
            },
        );
        let mut lay = layout(&p, &LayoutOptions::default());
        lay.bases[0] = cdpc_vm::addr::VirtAddr(lay.bases[0].0 + 32);
        let mut r = Report::new("t", 4, &[]);
        check(&p, &plan, &lay, &MachineModel::paper_base(4), &mut r);
        assert!(rules(&r).contains(&RULE_ARRAY_STRADDLE));
        assert!(rules(&r).contains(&RULE_FALSE_BOUNDARY));
    }

    #[test]
    fn line_multiple_units_are_clean() {
        let p = program(1024, true, false);
        let r = lint(&p, 4, LayoutMode::Aligned);
        assert!(rules(&r).is_empty(), "got {:?}", rules(&r));
    }

    #[test]
    fn read_only_accesses_are_clean() {
        let p = program(100, false, false);
        let r = lint(&p, 4, LayoutMode::Aligned);
        assert!(rules(&r).is_empty());
    }

    #[test]
    fn single_cpu_cannot_false_share() {
        let p = program(100, true, false);
        let r = lint(&p, 1, LayoutMode::Aligned);
        assert!(rules(&r).is_empty());
    }
}
