//! Cache-set interference equations over compiled footprints.
//!
//! This is the prover's middle layer: it maps every region a processor
//! touches — array footprints from [`OpSpec::access_footprints`], plus the
//! code segment — to virtual pages, pushes the pages through a model of
//! the run-time coloring ([`ColoringModel`]), and counts how many distinct
//! pages of each processor land on each color. Because pages of one color
//! cover exactly the same L2 set range ([`MachineModel::color_set_range`])
//! and different colors cover disjoint ranges, the per-(cpu, color) page
//! count *is* the interference equation: at most `associativity` pages per
//! color can coexist, so `pages ≤ assoc` for every equation proves the
//! execution free of conflict misses, and any overloaded equation names
//! the colliding regions, the color, and the excess.
//!
//! [`OpSpec::access_footprints`]: cdpc_compiler::trace::OpSpec::access_footprints

use std::collections::{BTreeMap, BTreeSet};

use cdpc_compiler::trace::OpSpec;
use cdpc_compiler::{CompiledProgram, CompiledStmt};
use cdpc_core::{generate_hints_with, HintOptions, MachineParams};
use cdpc_vm::addr::{Color, ColorSpace, PageGeometry};

use crate::machine::MachineModel;

/// What a page is used for: an array (by index into
/// [`CompiledProgram::arrays`]) or the code segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RegionId {
    /// Data array, by region index.
    Array(usize),
    /// Instruction fetches.
    Code,
}

impl RegionId {
    /// The attribution-tensor row this region occupies: arrays keep their
    /// index, code lands on the trailing `"(other)"` row — the same layout
    /// [`AttributionProbe`](cdpc_obs::AttributionProbe) uses.
    pub fn row(&self, num_arrays: usize) -> usize {
        match self {
            RegionId::Array(i) => *i,
            RegionId::Code => num_arrays,
        }
    }

    /// Human name for diagnostics.
    pub fn name(&self, compiled: &CompiledProgram) -> String {
        match self {
            RegionId::Array(i) => compiled
                .arrays
                .get(*i)
                .map_or_else(|| format!("array#{i}"), |a| a.name.clone()),
            RegionId::Code => "(code)".to_string(),
        }
    }
}

/// A static model of the color each virtual page will receive at run time.
///
/// The OS honors color preferences when physical pages are free (the
/// bench's `phys_slack` guarantees they are), so the preference function
/// *is* the placement: `vpn % colors` for the native page-coloring policy,
/// the hint table (with the run-time library's code-page round-robin) for
/// CDPC — mirroring `build_policy` in `cdpc-machine` exactly.
#[derive(Debug, Clone)]
pub enum ColoringModel {
    /// Native page coloring: `color = vpn % num_colors`.
    VpnMod {
        /// Color count of the modeled machine.
        num_colors: u64,
    },
    /// Compiler-directed hints with modulo fallback for unhinted pages.
    Hinted {
        /// Explicit page → color assignments.
        map: BTreeMap<u64, u64>,
        /// Color count of the modeled machine.
        num_colors: u64,
    },
}

impl ColoringModel {
    /// The native sequential policy (`PolicyKind::PageColoring`).
    pub fn page_coloring(machine: &MachineModel) -> Self {
        ColoringModel::VpnMod {
            num_colors: machine.num_colors(),
        }
    }

    /// The CDPC policy: compiler hints from the program's access summary,
    /// the code segment round-robined after the data pages, and modulo
    /// fallback for anything unhinted — step for step what
    /// `cdpc-machine`'s `build_policy` installs.
    pub fn cdpc(compiled: &CompiledProgram, machine: &MachineModel) -> Self {
        let params = MachineParams::new(
            machine.num_cpus,
            machine.page_bytes as usize,
            machine.l2_bytes as usize,
            machine.l2_assoc as usize,
        );
        let hints = generate_hints_with(&compiled.summary, &params, HintOptions::FULL)
            .expect("compiler-produced summaries are always valid");
        let colors = ColorSpace::new(
            machine.l2_bytes as usize,
            machine.page_bytes as usize,
            machine.l2_assoc as usize,
        );
        let mut map: BTreeMap<u64, u64> = hints
            .assignments()
            .into_iter()
            .map(|(vpn, color)| (vpn.0, u64::from(color.0)))
            .collect();
        if !hints.is_empty() {
            let mut color = Color(hints.len() as u32 % colors.num_colors());
            for vpn in code_vpns(compiled, machine.page_bytes) {
                if let std::collections::btree_map::Entry::Vacant(e) = map.entry(vpn) {
                    e.insert(u64::from(color.0));
                    color = colors.advance(color, 1);
                }
            }
        }
        ColoringModel::Hinted {
            map,
            num_colors: machine.num_colors(),
        }
    }

    /// The color `vpn`'s physical page will have.
    pub fn color_of(&self, vpn: u64) -> u64 {
        match self {
            ColoringModel::VpnMod { num_colors } => vpn % num_colors,
            ColoringModel::Hinted { map, num_colors } => {
                map.get(&vpn).copied().unwrap_or(vpn % num_colors)
            }
        }
    }

    /// Stable policy label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ColoringModel::VpnMod { .. } => "page-coloring",
            ColoringModel::Hinted { .. } => "cdpc",
        }
    }
}

/// How one processor uses one virtual page.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageUse {
    /// Regions with bytes on the page.
    pub regions: BTreeSet<RegionId>,
    /// `false` when only an over-approximated (irregular) footprint put
    /// the page here.
    pub exact: bool,
}

/// One interference equation: the pages processor `cpu` drives through
/// `color`'s set range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColorLoad {
    /// Processor.
    pub cpu: usize,
    /// Page color.
    pub color: u64,
    /// Distinct virtual pages of this CPU with this color.
    pub pages: u64,
    /// Regions owning those pages.
    pub regions: BTreeSet<RegionId>,
    /// `true` when every contributing page came from an exact footprint.
    pub exact: bool,
}

impl ColorLoad {
    /// Pages beyond what the set range can hold (`pages − assoc`, floored
    /// at zero).
    pub fn excess(&self, assoc: u64) -> u64 {
        self.pages.saturating_sub(assoc)
    }
}

/// Per-CPU page-use maps for a compiled program (whole program or one
/// phase), ready to be pushed through a [`ColoringModel`].
#[derive(Debug, Clone)]
pub struct InterferenceMap {
    /// Processor count.
    pub num_cpus: usize,
    /// `pages[cpu][vpn]` = how the CPU uses the page.
    pub pages: Vec<BTreeMap<u64, PageUse>>,
}

impl InterferenceMap {
    /// Collects every page each processor touches. `phase: None` takes
    /// the union over all phases — the sound domain for conflict
    /// prediction, since cached pages survive phase boundaries (and the
    /// warm-up pass touches everything before measurement begins).
    /// `phase: Some(i)` restricts to one phase for sharper per-phase
    /// proofs.
    pub fn build(compiled: &CompiledProgram, machine: &MachineModel, phase: Option<usize>) -> Self {
        let geometry = PageGeometry::new(machine.page_bytes as usize);
        let mut pages: Vec<BTreeMap<u64, PageUse>> = vec![BTreeMap::new(); machine.num_cpus];
        let mut add = |cpu: usize, region: RegionId, lo: u64, hi: u64, exact: bool| {
            if lo >= hi || cpu >= pages.len() {
                return;
            }
            let first = geometry.vpn_of(cdpc_vm::addr::VirtAddr(lo)).0;
            let last = geometry.vpn_of(cdpc_vm::addr::VirtAddr(hi - 1)).0;
            for vpn in first..=last {
                let page = pages[cpu].entry(vpn).or_insert(PageUse {
                    regions: BTreeSet::new(),
                    exact: true,
                });
                page.regions.insert(region);
                page.exact &= exact;
            }
        };
        let mut visit = |spec: &OpSpec, cpu: usize| {
            for fp in spec.access_footprints() {
                for &(lo, hi) in &fp.intervals {
                    add(cpu, region_of(compiled, fp.base), lo, hi, fp.exact);
                }
            }
            if spec.lo < spec.hi {
                // Instruction fetches cycle through the body's code lines.
                let code_lines = spec.code_bytes.div_ceil(spec.granularity).max(1);
                add(
                    cpu,
                    RegionId::Code,
                    spec.code_base,
                    spec.code_base + code_lines * spec.granularity,
                    true,
                );
            }
        };
        for (i, ph) in compiled.phases.iter().enumerate() {
            if phase.is_some_and(|only| only != i) {
                continue;
            }
            for stmt in &ph.stmts {
                match stmt {
                    CompiledStmt::Parallel { specs } => {
                        for (cpu, spec) in specs.iter().enumerate() {
                            visit(spec, cpu);
                        }
                    }
                    // Master work (suppressed or not) executes on CPU 0.
                    CompiledStmt::Master { spec, .. } => visit(spec, 0),
                }
            }
        }
        InterferenceMap {
            num_cpus: machine.num_cpus,
            pages,
        }
    }

    /// Evaluates the equations under `coloring`: every (cpu, color) with at
    /// least one page, sorted by (cpu, color).
    pub fn color_loads(&self, coloring: &ColoringModel) -> Vec<ColorLoad> {
        let mut out = Vec::new();
        for (cpu, pages) in self.pages.iter().enumerate() {
            let mut per_color: BTreeMap<u64, ColorLoad> = BTreeMap::new();
            for (&vpn, usage) in pages {
                let color = coloring.color_of(vpn);
                let load = per_color.entry(color).or_insert(ColorLoad {
                    cpu,
                    color,
                    pages: 0,
                    regions: BTreeSet::new(),
                    exact: true,
                });
                load.pages += 1;
                load.regions.extend(usage.regions.iter().copied());
                load.exact &= usage.exact;
            }
            out.extend(per_color.into_values());
        }
        out
    }

    /// The overloaded equations only: more pages than the set range has
    /// ways. An empty result is the conflict-freedom proof.
    pub fn overloads(&self, coloring: &ColoringModel, assoc: u64) -> Vec<ColorLoad> {
        self.color_loads(coloring)
            .into_iter()
            .filter(|l| l.pages > assoc)
            .collect()
    }

    /// Distinct pages a processor touches (its whole working set).
    pub fn pages_of(&self, cpu: usize) -> u64 {
        self.pages.get(cpu).map_or(0, |m| m.len() as u64)
    }
}

/// The region an access base address belongs to (code has no array).
fn region_of(compiled: &CompiledProgram, base: u64) -> RegionId {
    compiled
        .array_of_addr(base)
        .map_or(RegionId::Code, RegionId::Array)
}

/// The code-segment pages, mirroring `cdpc-machine`'s `code_pages`: the
/// largest body across all statements, from the layout's code base.
fn code_vpns(compiled: &CompiledProgram, page_bytes: u64) -> Vec<u64> {
    let geometry = PageGeometry::new(page_bytes as usize);
    let max_code = compiled
        .phases
        .iter()
        .flat_map(|ph| ph.stmts.iter())
        .map(|s| match s {
            CompiledStmt::Parallel { specs } => specs.first().map(|x| x.code_bytes).unwrap_or(0),
            CompiledStmt::Master { spec, .. } => spec.code_bytes,
        })
        .max()
        .unwrap_or(0);
    let first = geometry.vpn_of(compiled.layout.code_base).0;
    let last = geometry
        .vpn_of(cdpc_vm::addr::VirtAddr(
            compiled.layout.code_base.0 + max_code.max(1) - 1,
        ))
        .0;
    (first..=last).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdpc_compiler::ir::{Access, AccessPattern, LoopNest, Phase, Program, Stmt, StmtKind};
    use cdpc_compiler::{compile, CompileOptions};

    /// 2 CPUs, 8-color 32 KB direct-mapped machine (4 KB pages).
    fn machine() -> MachineModel {
        MachineModel {
            num_cpus: 2,
            page_bytes: 4096,
            l2_bytes: 32 << 10,
            l2_line_bytes: 128,
            l2_assoc: 1,
        }
    }

    fn partitioned_program(arrays: usize, bytes: u64) -> CompiledProgram {
        let mut p = Program::new("interf");
        let mut stmts = Vec::new();
        for i in 0..arrays {
            let a = p.array(format!("A{i}"), bytes);
            stmts.push(Stmt {
                kind: StmtKind::Parallel,
                // Work per iteration high enough that parallelize never
                // suppresses the sweep to a master statement.
                nest: LoopNest::new(format!("sweep{i}"), bytes / 1024, 500).with_access(
                    Access::write(a, AccessPattern::Partitioned { unit_bytes: 1024 }),
                ),
            });
        }
        p.phase(Phase {
            name: "steady".into(),
            stmts,
            count: 1,
        });
        compile(&p, &CompileOptions::new(2)).expect("compiles")
    }

    #[test]
    fn pages_match_per_cpu_footprints() {
        let m = machine();
        let compiled = partitioned_program(1, 16 << 10); // 4 pages
        let map = InterferenceMap::build(&compiled, &m, None);
        // Each CPU owns half the array (2 pages) plus one code page.
        for cpu in 0..2 {
            let data = map.pages[cpu]
                .values()
                .filter(|u| u.regions.contains(&RegionId::Array(0)))
                .count();
            assert_eq!(data, 2, "cpu {cpu} owns half the 4-page array");
            assert!(map.pages[cpu]
                .values()
                .any(|u| u.regions.contains(&RegionId::Code)));
            assert!(map.pages[cpu].values().all(|u| u.exact));
        }
    }

    #[test]
    fn color_loads_prove_a_small_program_clean() {
        let m = machine();
        let compiled = partitioned_program(1, 16 << 10);
        let map = InterferenceMap::build(&compiled, &m, None);
        let coloring = ColoringModel::page_coloring(&m);
        assert!(
            map.overloads(&coloring, m.l2_assoc).is_empty(),
            "3 pages over 8 colors cannot overload a direct-mapped cache"
        );
    }

    #[test]
    fn overload_appears_when_pages_share_a_color() {
        let m = machine();
        // Five 32 KB arrays: each CPU touches 4 pages per array, 20 data
        // pages + code over 8 colors — some color must exceed 1 way; and
        // with the aligned layout the bases all collide mod cache size.
        let compiled = partitioned_program(5, 32 << 10);
        let map = InterferenceMap::build(&compiled, &m, None);
        let coloring = ColoringModel::page_coloring(&m);
        let overloads = map.overloads(&coloring, m.l2_assoc);
        assert!(!overloads.is_empty(), "20 pages over 8 colors must collide");
        let worst = overloads.iter().max_by_key(|l| l.pages).unwrap();
        assert!(worst.regions.len() >= 2, "collisions name multiple regions");
        assert!(worst.exact);
    }

    #[test]
    fn phase_restriction_shrinks_the_map() {
        let mut p = Program::new("two-phase");
        let a = p.array("A", 16 << 10);
        let b = p.array("B", 16 << 10);
        for (name, arr) in [("first", a), ("second", b)] {
            p.phase(Phase {
                name: name.into(),
                stmts: vec![Stmt {
                    kind: StmtKind::Parallel,
                    nest: LoopNest::new(format!("{name}-sweep"), 16, 100).with_access(
                        Access::write(arr, AccessPattern::Partitioned { unit_bytes: 1024 }),
                    ),
                }],
                count: 1,
            });
        }
        let compiled = compile(&p, &CompileOptions::new(2)).expect("compiles");
        let m = machine();
        let whole = InterferenceMap::build(&compiled, &m, None);
        let first = InterferenceMap::build(&compiled, &m, Some(0));
        assert!(first.pages_of(0) < whole.pages_of(0));
        assert!(first.pages[0]
            .values()
            .all(|u| !u.regions.contains(&RegionId::Array(1))));
    }

    #[test]
    fn cdpc_model_matches_hint_table_semantics() {
        let m = machine();
        let compiled = partitioned_program(5, 32 << 10);
        let model = ColoringModel::cdpc(&compiled, &m);
        let ColoringModel::Hinted { map, num_colors } = &model else {
            panic!("cdpc model is hinted");
        };
        assert_eq!(*num_colors, 8);
        assert!(!map.is_empty(), "partitioned arrays produce hints");
        // Hinted colors are in range; unhinted pages fall back to modulo.
        for (&vpn, &color) in map.iter() {
            assert!(color < 8, "vpn {vpn} got color {color}");
        }
        assert_eq!(model.color_of(u64::MAX - 7), (u64::MAX - 7) % 8);
        // The CDPC plan spreads each CPU's pages strictly better than (or
        // equal to) modulo coloring on this colliding program.
        let imap = InterferenceMap::build(&compiled, &m, None);
        let worst = |c: &ColoringModel| {
            imap.color_loads(c)
                .iter()
                .map(|l| l.pages)
                .max()
                .unwrap_or(0)
        };
        assert!(worst(&model) <= worst(&ColoringModel::page_coloring(&m)));
    }
}
