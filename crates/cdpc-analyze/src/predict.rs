//! The static conflict-miss prover.
//!
//! The paper's central claim is that the compiler can *predict* cache
//! conflicts from per-processor footprints and choose page colors that
//! avoid them. This module closes the loop statically: it evaluates the
//! interference equations of [`crate::interference`] over a program's
//! compiled footprints and either **proves** each phase (and the whole
//! execution) conflict-free, or emits ranked `predict/conflict-cell`
//! diagnostics naming the arrays, the color, and the estimated miss
//! magnitude — each with machine-applicable fix-its that have been
//! round-tripped through the compiler (pad the array, recolor with CDPC
//! hints, split the phase).
//!
//! Soundness contract: a conflict miss requires some processor to drive
//! more pages through one color's set range than the cache has ways.
//! Pages stay cached across statement and phase boundaries (and the
//! bench's warm-up pass touches everything first), so the *predicted cell
//! set* is computed from the whole-program per-CPU page union — every
//! simulated conflict cell must land inside it (zero false negatives).
//! Per-phase equations are evaluated separately for the sharper proofs
//! and for ranking. Irregular accesses degrade to a bounded
//! over-approximation and lower the `confidence` field instead of going
//! silent.

use std::collections::BTreeSet;

use cdpc_compiler::ir::Program;
use cdpc_compiler::{compile, CompileOptions, CompiledProgram};

use crate::diag::{Diagnostic, FixIt, Location, Report, Severity};
use crate::interference::{ColorLoad, ColoringModel, InterferenceMap, RegionId};
use crate::machine::MachineModel;

/// Rule id: a predicted conflict on one (color, region-set) equation.
pub const RULE_CONFLICT_CELL: &str = "predict/conflict-cell";
/// Rule id: a phase (or the whole program) proven conflict-free.
pub const RULE_CONFLICT_FREE: &str = "predict/conflict-free";
/// Rule id: per-statement footprints fit but the phase union does not.
pub const RULE_PHASE_PRESSURE: &str = "predict/phase-pressure";

/// Confidence (percent) of an equation whose pages all come from exact
/// affine footprints.
const CONF_EXACT: u8 = 100;
/// Confidence when an irregular (over-approximated) footprint contributes.
const CONF_BOUNDED: u8 = 60;

/// Which run-time coloring policy the prover models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProverPolicy {
    /// Native sequential coloring (`vpn % colors`).
    PageColoring,
    /// Compiler-directed hints (the CDPC policy).
    Cdpc,
}

impl ProverPolicy {
    fn model(self, compiled: &CompiledProgram, machine: &MachineModel) -> ColoringModel {
        match self {
            ProverPolicy::PageColoring => ColoringModel::page_coloring(machine),
            ProverPolicy::Cdpc => ColoringModel::cdpc(compiled, machine),
        }
    }
}

/// Verdict for one phase.
#[derive(Debug, Clone)]
pub struct PhaseVerdict {
    /// Phase name.
    pub phase: String,
    /// `true` when every per-(cpu, color) equation of the phase fits in
    /// the cache's ways.
    pub proven_free: bool,
    /// The overloaded equations (empty iff `proven_free`).
    pub overloads: Vec<ColorLoad>,
}

/// The prover's complete output for one program × machine × policy.
#[derive(Debug, Clone)]
pub struct ConflictPrediction {
    /// Program name.
    pub program: String,
    /// Modeled policy label (`"page-coloring"` / `"cdpc"`).
    pub policy: String,
    /// Color count of the modeled machine.
    pub num_colors: u64,
    /// Predicted hot cells as (attribution row, color): every region on an
    /// overloaded whole-program equation, on every color it overloads.
    /// Rows follow the attribution tensor: array index, or `arrays.len()`
    /// for code. This is the set the zero-false-negative guarantee is
    /// stated over.
    pub cells: BTreeSet<(usize, u64)>,
    /// `true` when `cells` is empty: a proof of conflict-freedom.
    pub proven_free: bool,
    /// Percent confidence: [`CONF_EXACT`] when every equation is exact,
    /// degraded when irregular footprints forced over-approximation.
    pub confidence: u8,
    /// Estimated conflict-miss magnitude per steady-state pass (excess
    /// pages × lines per page × phase trip counts, summed).
    pub est_misses: u64,
    /// Per-phase proofs/overloads.
    pub phases: Vec<PhaseVerdict>,
}

/// Runs the prover: compiles `program`, evaluates the interference
/// equations under `policy`, and returns the prediction plus a ranked
/// diagnostic [`Report`] with round-tripped fix-its.
///
/// # Panics
///
/// Panics if `program` does not compile — run
/// [`analyze_program`](crate::analyze_program) first; the prover is for
/// structurally valid programs.
pub fn predict_program(
    program: &Program,
    opts: &CompileOptions,
    machine: &MachineModel,
    policy: ProverPolicy,
) -> (ConflictPrediction, Report) {
    let compiled = compile(program, opts).expect("prover input compiles");
    let coloring = policy.model(&compiled, machine);
    let assoc = machine.l2_assoc;
    let num_arrays = compiled.arrays.len();

    // Whole-program equations: the sound predicted-cell set.
    let whole = InterferenceMap::build(&compiled, machine, None);
    let whole_overloads = whole.overloads(&coloring, assoc);
    let mut cells = BTreeSet::new();
    let mut confidence = CONF_EXACT;
    for load in &whole_overloads {
        for region in &load.regions {
            cells.insert((region.row(num_arrays), load.color));
        }
        if !load.exact {
            confidence = confidence.min(CONF_BOUNDED);
        }
    }

    // Per-phase equations: sharper proofs and the ranking signal.
    let mut phases = Vec::new();
    for (i, ph) in compiled.phases.iter().enumerate() {
        let map = InterferenceMap::build(&compiled, machine, Some(i));
        let overloads = map.overloads(&coloring, assoc);
        phases.push(PhaseVerdict {
            phase: ph.name.clone(),
            proven_free: overloads.is_empty(),
            overloads,
        });
    }

    let mut report = Report::new(&program.name, machine.num_cpus, &program.lint_allows);
    let est_misses = push_diagnostics(
        program,
        &compiled,
        machine,
        policy,
        &coloring,
        &phases,
        &mut report,
    );

    let prediction = ConflictPrediction {
        program: program.name.clone(),
        policy: coloring.name().to_string(),
        num_colors: machine.num_colors(),
        proven_free: cells.is_empty(),
        cells,
        confidence,
        est_misses,
        phases,
    };
    (prediction, report)
}

/// Emits ranked diagnostics (worst first) and returns the summed miss
/// estimate.
fn push_diagnostics(
    program: &Program,
    compiled: &CompiledProgram,
    machine: &MachineModel,
    policy: ProverPolicy,
    coloring: &ColoringModel,
    phases: &[PhaseVerdict],
    report: &mut Report,
) -> u64 {
    // One candidate per (phase, color): the worst CPU's equation, weighted
    // by the phase trip count.
    struct Candidate {
        phase: String,
        count: u64,
        load: ColorLoad,
        est: u64,
    }
    let lines_per_page = machine.page_bytes / machine.l2_line_bytes.max(1);
    let mut candidates: Vec<Candidate> = Vec::new();
    for (verdict, ph) in phases.iter().zip(&compiled.phases) {
        let mut per_color: std::collections::BTreeMap<u64, &ColorLoad> =
            std::collections::BTreeMap::new();
        for load in &verdict.overloads {
            let slot = per_color.entry(load.color).or_insert(load);
            if load.pages > slot.pages {
                *slot = load;
            }
        }
        for &load in per_color.values() {
            // Each excess page re-fights for every line index of the
            // color's set range once per pass of the phase.
            let est = load.excess(machine.l2_assoc) * lines_per_page * ph.count.max(1);
            candidates.push(Candidate {
                phase: verdict.phase.clone(),
                count: ph.count,
                load: load.clone(),
                est,
            });
        }
    }
    candidates.sort_by(|a, b| {
        b.est
            .cmp(&a.est)
            .then_with(|| a.phase.cmp(&b.phase))
            .then(a.load.color.cmp(&b.load.color))
            .then(a.load.cpu.cmp(&b.load.cpu))
    });
    let est_total: u64 = candidates.iter().map(|c| c.est).sum();

    // Fix-it search budget: round-tripping pads through the compiler is
    // O(pads × compile), so only the worst finding gets the full search.
    let mut searched_pad = false;
    for cand in &candidates {
        let names: Vec<String> = cand.load.regions.iter().map(|r| r.name(compiled)).collect();
        let primary = names.first().cloned().unwrap_or_default();
        let confidence = if cand.load.exact {
            CONF_EXACT
        } else {
            CONF_BOUNDED
        };
        let mut d = Diagnostic::new(
            RULE_CONFLICT_CELL,
            Severity::Warn,
            Location::at(cand.phase.clone(), "-", primary),
            format!(
                "cpu {} drives {} pages of {{{}}} through color {} ({}-way set \
                 range): ~{} conflict misses per pass (×{} passes)",
                cand.load.cpu,
                cand.load.pages,
                names.join(", "),
                cand.load.color,
                machine.l2_assoc,
                cand.est,
                cand.count.max(1),
            ),
        )
        .with_confidence(confidence);
        for fixit in find_fixits(
            program,
            compiled,
            machine,
            policy,
            &cand.load,
            &mut searched_pad,
        ) {
            d = d.with_fixit(fixit);
        }
        report.push(d);
    }

    // Proof diagnostics for clean phases; phase-pressure advisory when a
    // phase overloads but each statement alone would fit.
    for verdict in phases {
        if verdict.proven_free {
            report.push(
                Diagnostic::new(
                    RULE_CONFLICT_FREE,
                    Severity::Info,
                    Location {
                        phase: Some(verdict.phase.clone()),
                        ..Location::default()
                    },
                    format!(
                        "proven conflict-free under {} ({} colors, {}-way)",
                        coloring.name(),
                        machine.num_colors(),
                        machine.l2_assoc
                    ),
                )
                .with_confidence(CONF_EXACT),
            );
        } else if phase_fits_per_stmt(compiled, machine, coloring, &verdict.phase) {
            report.push(
                Diagnostic::new(
                    RULE_PHASE_PRESSURE,
                    Severity::Warn,
                    Location {
                        phase: Some(verdict.phase.clone()),
                        ..Location::default()
                    },
                    "each statement's footprint fits the cache alone, but the \
                     phase union overloads: splitting the phase removes the \
                     predicted conflicts"
                        .to_string(),
                )
                .with_fixit(FixIt::SplitPhase {
                    phase: verdict.phase.clone(),
                }),
            );
        }
    }
    est_total
}

/// Fix-its for one overloaded equation, each verified by re-running the
/// prover on the transformed input (the simulator half of the round-trip
/// lives in the `predict` bench tests).
fn find_fixits(
    program: &Program,
    compiled: &CompiledProgram,
    machine: &MachineModel,
    policy: ProverPolicy,
    load: &ColorLoad,
    searched_pad: &mut bool,
) -> Vec<FixIt> {
    let mut fixits = Vec::new();
    let opts = prover_opts(machine);
    let primary = load
        .regions
        .iter()
        .find_map(|r| match r {
            RegionId::Array(i) => Some(*i),
            RegionId::Code => None,
        })
        .map(|i| compiled.arrays[i].name.clone());

    // Recolor: does the CDPC plan prove the whole program clean?
    if policy == ProverPolicy::PageColoring {
        let cdpc = ColoringModel::cdpc(compiled, machine);
        let map = InterferenceMap::build(compiled, machine, None);
        if map.overloads(&cdpc, machine.l2_assoc).is_empty() {
            if let Some(name) = &primary {
                fixits.push(FixIt::RecolorRegion {
                    array: name.clone(),
                });
            }
        }
    }

    // Pad: grow one involved array so the layout shifts later arrays to
    // other colors; accept the first pad the prover verifies removes every
    // overload. Only the top-ranked finding pays for this search.
    if !*searched_pad {
        *searched_pad = true;
        'outer: for region in &load.regions {
            let RegionId::Array(idx) = region else {
                continue;
            };
            for pad in 1..=machine.num_colors().min(16) {
                let mut padded = program.clone();
                padded.arrays[*idx].bytes += pad * machine.page_bytes;
                let Ok(recompiled) = compile(&padded, &opts) else {
                    continue;
                };
                let coloring = policy.model(&recompiled, machine);
                let map = InterferenceMap::build(&recompiled, machine, None);
                if map.overloads(&coloring, machine.l2_assoc).is_empty() {
                    fixits.push(FixIt::PadArray {
                        array: compiled.arrays[*idx].name.clone(),
                        pad_pages: pad,
                    });
                    break 'outer;
                }
            }
        }
    }
    fixits
}

/// The compile options the prover uses for transformed inputs, rebuilt
/// from the machine model (mirrors the bench's `with_l2_cache`).
fn prover_opts(machine: &MachineModel) -> CompileOptions {
    CompileOptions::new(machine.num_cpus).with_l2_cache(machine.l2_bytes)
}

/// `true` when every statement of `phase`, taken alone, fits the cache
/// under `coloring` — the signal for the split-phase advisory.
fn phase_fits_per_stmt(
    compiled: &CompiledProgram,
    machine: &MachineModel,
    coloring: &ColoringModel,
    phase: &str,
) -> bool {
    use cdpc_compiler::CompiledStmt;
    use cdpc_vm::addr::{PageGeometry, VirtAddr};
    let Some(ph) = compiled.phases.iter().find(|p| p.name == phase) else {
        return false;
    };
    let geometry = PageGeometry::new(machine.page_bytes as usize);
    for stmt in &ph.stmts {
        let specs: Vec<&cdpc_compiler::trace::OpSpec> = match stmt {
            CompiledStmt::Parallel { specs } => specs.iter().collect(),
            CompiledStmt::Master { spec, .. } => vec![spec],
        };
        for spec in specs {
            let mut per_color: std::collections::BTreeMap<u64, BTreeSet<u64>> =
                std::collections::BTreeMap::new();
            let mut touch = |lo: u64, hi: u64| {
                if lo >= hi {
                    return;
                }
                let first = geometry.vpn_of(VirtAddr(lo)).0;
                let last = geometry.vpn_of(VirtAddr(hi - 1)).0;
                for vpn in first..=last {
                    per_color
                        .entry(coloring.color_of(vpn))
                        .or_default()
                        .insert(vpn);
                }
            };
            for fp in spec.access_footprints() {
                for &(lo, hi) in &fp.intervals {
                    touch(lo, hi);
                }
            }
            if spec.lo < spec.hi {
                let code_lines = spec.code_bytes.div_ceil(spec.granularity).max(1);
                touch(
                    spec.code_base,
                    spec.code_base + code_lines * spec.granularity,
                );
            }
            if per_color
                .values()
                .any(|pages| pages.len() as u64 > machine.l2_assoc)
            {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdpc_compiler::ir::{Access, AccessPattern, LoopNest, Phase, Stmt, StmtKind};

    /// 2 CPUs, 8-color 32 KB direct-mapped machine.
    fn machine() -> MachineModel {
        MachineModel {
            num_cpus: 2,
            page_bytes: 4096,
            l2_bytes: 32 << 10,
            l2_line_bytes: 128,
            l2_assoc: 1,
        }
    }

    fn sweep(name: &str, arr: cdpc_compiler::ir::ArrayRef, iters: u64) -> Stmt {
        Stmt {
            kind: StmtKind::Parallel,
            // Work per iteration high enough that parallelize never
            // suppresses the sweep (threshold 2000, smallest sweep 8 iters).
            nest: LoopNest::new(name, iters, 500).with_access(Access::write(
                arr,
                AccessPattern::Partitioned { unit_bytes: 1024 },
            )),
        }
    }

    #[test]
    fn small_program_is_proven_free() {
        let mut p = Program::new("clean");
        let a = p.array("A", 8 << 10);
        p.phase(Phase {
            name: "steady".into(),
            stmts: vec![sweep("s", a, 8)],
            count: 1,
        });
        let (pred, report) = predict_program(
            &p,
            &prover_opts(&machine()),
            &machine(),
            ProverPolicy::PageColoring,
        );
        assert!(pred.proven_free, "2 pages over 8 colors cannot conflict");
        assert!(pred.cells.is_empty());
        assert_eq!(pred.confidence, 100);
        assert!(report.with_rule(RULE_CONFLICT_FREE).next().is_some());
        assert!(report.with_rule(RULE_CONFLICT_CELL).next().is_none());
    }

    #[test]
    fn oversubscribed_colors_predict_ranked_cells() {
        // Five 32 KB arrays: 20 data pages per CPU over 8 direct-mapped
        // colors must overload; the prover names cells and repairs.
        let mut p = Program::new("conflicted");
        let arrays: Vec<_> = (0..5).map(|i| p.array(format!("A{i}"), 32 << 10)).collect();
        p.phase(Phase {
            name: "steady".into(),
            stmts: arrays
                .iter()
                .enumerate()
                .map(|(i, &a)| sweep(&format!("s{i}"), a, 32))
                .collect(),
            count: 2,
        });
        let m = machine();
        let (pred, report) = predict_program(&p, &prover_opts(&m), &m, ProverPolicy::PageColoring);
        assert!(!pred.proven_free);
        assert!(!pred.cells.is_empty());
        assert!(pred.est_misses > 0);
        let first = report.with_rule(RULE_CONFLICT_CELL).next().expect("cells");
        assert_eq!(first.confidence, Some(100));
        // Diagnostics are ranked worst-first.
        let ests: Vec<u64> = report
            .with_rule(RULE_CONFLICT_CELL)
            .map(|d| {
                d.message
                    .split('~')
                    .nth(1)
                    .and_then(|s| s.split(' ').next())
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0)
            })
            .collect();
        assert!(ests.windows(2).all(|w| w[0] >= w[1]), "ranked: {ests:?}");
    }

    #[test]
    fn pad_fixit_round_trips_through_the_prover() {
        // Two 16 KB arrays on the 8-color machine. The layout is fully
        // deterministic (separate sweeps → no grouping pads): A covers
        // colors {0..3}, B {4..7}, and the code page lands on color 1 —
        // colliding with A's second page on CPU 0. Padding A relocates B
        // and the code page together; the prover must find a pad that
        // proves the whole program clean.
        let mut p = Program::new("pad-me");
        let a = p.array("A", 16 << 10);
        let b = p.array("B", 16 << 10);
        p.phase(Phase {
            name: "steady".into(),
            stmts: vec![sweep("sa", a, 16), sweep("sb", b, 16)],
            count: 1,
        });
        let m = machine();
        let (pred, report) = predict_program(&p, &prover_opts(&m), &m, ProverPolicy::PageColoring);
        assert!(!pred.proven_free, "code page collides with A on cpu 0");
        let pad = report
            .diagnostics
            .iter()
            .flat_map(|d| d.fixits.iter())
            .find_map(|f| match f {
                FixIt::PadArray { array, pad_pages } => Some((array.clone(), *pad_pages)),
                _ => None,
            })
            .expect("prover finds a verified pad");
        // Re-apply the fix and re-prove: the conflict must be gone.
        let mut fixed = p.clone();
        let idx = fixed.arrays.iter().position(|ad| ad.name == pad.0).unwrap();
        fixed.arrays[idx].bytes += pad.1 * m.page_bytes;
        let (pred2, _) = predict_program(&fixed, &prover_opts(&m), &m, ProverPolicy::PageColoring);
        assert!(pred2.proven_free, "applied fix-it removes the conflict");
    }

    #[test]
    fn irregular_access_degrades_confidence_not_silence() {
        let mut p = Program::new("irregular");
        // 64 KB of irregularly-touched data bounds to 16 pages per CPU —
        // every color of the 8-color machine holds two of them.
        let a = p.array("L", 64 << 10);
        let b = p.array("M", 32 << 10);
        p.allow_lint("race/irregular-write");
        p.phase(Phase {
            name: "steady".into(),
            stmts: vec![
                Stmt {
                    kind: StmtKind::Parallel,
                    nest: LoopNest::new("scatter", 64, 100).with_access(Access::write(
                        a,
                        AccessPattern::Irregular {
                            touches_per_iter: 4,
                        },
                    )),
                },
                sweep("sm", b, 32),
            ],
            count: 1,
        });
        let m = machine();
        let (pred, report) = predict_program(&p, &prover_opts(&m), &m, ProverPolicy::PageColoring);
        assert!(!pred.proven_free, "the bound itself oversubscribes");
        assert_eq!(pred.confidence, CONF_BOUNDED);
        assert!(report
            .with_rule(RULE_CONFLICT_CELL)
            .any(|d| d.confidence == Some(CONF_BOUNDED)));
    }
}
