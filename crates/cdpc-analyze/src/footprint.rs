//! Per-processor affine footprints of one access in a distributed loop.
//!
//! The race, false-sharing, and conflict lints all reason about the same
//! object: the byte intervals of an array one processor touches while a
//! distributed loop runs. For the affine patterns of the IR these are
//! exact (the same arithmetic [`ArrayPartitioning::unit_range`] uses);
//! irregular accesses have no static footprint and return `None`.

use cdpc_compiler::ir::AccessPattern;
use cdpc_core::summary::{ArrayPartitioning, PartitionDirection, PartitionPolicy};

/// Byte interval `[start, end)` relative to the array's first byte.
pub type Interval = (u64, u64);

/// The unit range `[lo, hi)` a CPU owns, without constructing a summary
/// object (tolerates `num_units == 0`, which the summary type rejects).
pub fn unit_range(
    policy: PartitionPolicy,
    direction: PartitionDirection,
    num_units: u64,
    cpu: usize,
    num_cpus: usize,
) -> (u64, u64) {
    if num_units == 0 {
        return (0, 0);
    }
    ArrayPartitioning::new(
        cdpc_core::summary::ArrayId(0),
        1,
        num_units,
        policy,
        direction,
    )
    .unit_range(cpu, num_cpus)
}

/// The byte intervals of its array that `cpu` touches through one access
/// of a loop distributed as (`policy`, `direction`) over `iterations`
/// units across `num_cpus` processors.
///
/// * `writes_only` restricts a stencil to its core (stencils write the
///   owned units; the halo is read-only).
/// * Returns `None` for [`AccessPattern::Irregular`] — no static bound.
/// * Intervals are clamped to the accessed region
///   `[0, iterations × unit_bytes)`; a stencil with periodic boundaries
///   (`wraparound`) may return two intervals.
#[allow(clippy::too_many_arguments)]
pub fn cpu_intervals(
    pattern: AccessPattern,
    iterations: u64,
    array_bytes: u64,
    policy: PartitionPolicy,
    direction: PartitionDirection,
    cpu: usize,
    num_cpus: usize,
    writes_only: bool,
) -> Option<Vec<Interval>> {
    match pattern {
        AccessPattern::Partitioned { unit_bytes } => {
            let (lo, hi) = unit_range(policy, direction, iterations, cpu, num_cpus);
            Some(byte_intervals(lo, hi, unit_bytes))
        }
        AccessPattern::Stencil {
            unit_bytes,
            halo_units,
            wraparound,
        } => {
            let (lo, hi) = unit_range(policy, direction, iterations, cpu, num_cpus);
            if lo == hi {
                return Some(Vec::new());
            }
            if writes_only {
                return Some(byte_intervals(lo, hi, unit_bytes));
            }
            let mut out = byte_intervals(
                lo.saturating_sub(halo_units),
                (hi + halo_units).min(iterations),
                unit_bytes,
            );
            if wraparound {
                // Periodic boundary: the first owner also reads the last
                // units and vice versa.
                if lo < halo_units {
                    let wrap_lo = iterations.saturating_sub(halo_units - lo);
                    out.extend(byte_intervals(wrap_lo, iterations, unit_bytes));
                }
                if hi + halo_units > iterations {
                    let wrap_hi = (hi + halo_units - iterations).min(iterations);
                    out.extend(byte_intervals(0, wrap_hi, unit_bytes));
                }
            }
            Some(normalize(out))
        }
        AccessPattern::WholeArray => Some(if array_bytes > 0 {
            vec![(0, array_bytes)]
        } else {
            Vec::new()
        }),
        AccessPattern::Irregular { .. } => None,
    }
}

fn byte_intervals(lo_unit: u64, hi_unit: u64, unit_bytes: u64) -> Vec<Interval> {
    if lo_unit >= hi_unit || unit_bytes == 0 {
        Vec::new()
    } else {
        vec![(lo_unit * unit_bytes, hi_unit * unit_bytes)]
    }
}

/// Sorts and merges touching/overlapping intervals.
pub fn normalize(mut intervals: Vec<Interval>) -> Vec<Interval> {
    intervals.retain(|&(a, b)| a < b);
    intervals.sort_unstable();
    let mut out: Vec<Interval> = Vec::with_capacity(intervals.len());
    for (a, b) in intervals {
        match out.last_mut() {
            Some(last) if a <= last.1 => last.1 = last.1.max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

/// The intersection of two interval lists (both need not be normalized).
pub fn intersect(a: &[Interval], b: &[Interval]) -> Vec<Interval> {
    let mut out = Vec::new();
    for &(a0, a1) in a {
        for &(b0, b1) in b {
            let lo = a0.max(b0);
            let hi = a1.min(b1);
            if lo < hi {
                out.push((lo, hi));
            }
        }
    }
    normalize(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use AccessPattern as P;
    use PartitionDirection::Forward;
    use PartitionPolicy::Blocked;

    #[test]
    fn partitioned_footprints_tile_disjointly() {
        let fps: Vec<_> = (0..4)
            .map(|c| {
                cpu_intervals(
                    P::Partitioned { unit_bytes: 100 },
                    8,
                    800,
                    Blocked,
                    Forward,
                    c,
                    4,
                    false,
                )
                .unwrap()
            })
            .collect();
        assert_eq!(fps[0], vec![(0, 200)]);
        assert_eq!(fps[3], vec![(600, 800)]);
        for i in 0..4 {
            for j in i + 1..4 {
                assert!(intersect(&fps[i], &fps[j]).is_empty());
            }
        }
    }

    #[test]
    fn stencil_reads_extend_writes_do_not() {
        let pat = P::Stencil {
            unit_bytes: 100,
            halo_units: 1,
            wraparound: false,
        };
        let reads = cpu_intervals(pat, 8, 800, Blocked, Forward, 1, 4, false).unwrap();
        let writes = cpu_intervals(pat, 8, 800, Blocked, Forward, 1, 4, true).unwrap();
        assert_eq!(reads, vec![(100, 500)]); // units 2..4 plus one halo unit each side
        assert_eq!(writes, vec![(200, 400)]);
    }

    #[test]
    fn wraparound_stencil_wraps_both_ends() {
        let pat = P::Stencil {
            unit_bytes: 10,
            halo_units: 1,
            wraparound: true,
        };
        let first = cpu_intervals(pat, 8, 80, Blocked, Forward, 0, 4, false).unwrap();
        assert_eq!(first, vec![(0, 30), (70, 80)]);
        let last = cpu_intervals(pat, 8, 80, Blocked, Forward, 3, 4, false).unwrap();
        assert_eq!(last, vec![(0, 10), (50, 80)]);
    }

    #[test]
    fn irregular_has_no_static_footprint() {
        assert_eq!(
            cpu_intervals(
                P::Irregular {
                    touches_per_iter: 4
                },
                8,
                800,
                Blocked,
                Forward,
                0,
                4,
                false
            ),
            None
        );
    }

    #[test]
    fn normalize_merges_and_intersect_clips() {
        assert_eq!(
            normalize(vec![(5, 10), (0, 5), (20, 30)]),
            vec![(0, 10), (20, 30)]
        );
        assert_eq!(intersect(&[(0, 10)], &[(5, 20)]), vec![(5, 10)]);
        assert_eq!(intersect(&[(0, 5)], &[(5, 20)]), Vec::<Interval>::new());
    }
}
