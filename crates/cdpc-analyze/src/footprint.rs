//! Per-processor affine footprints of one access in a distributed loop.
//!
//! The race, false-sharing, and conflict lints all reason about the same
//! object: the byte intervals of an array one processor touches while a
//! distributed loop runs. For the affine patterns of the IR these are
//! exact (the same arithmetic [`ArrayPartitioning::unit_range`] uses);
//! irregular accesses have no static footprint and return `None`.

use cdpc_compiler::ir::AccessPattern;
use cdpc_core::summary::{ArrayPartitioning, PartitionDirection, PartitionPolicy};

/// Byte interval `[start, end)` relative to the array's first byte.
pub type Interval = (u64, u64);

/// The unit range `[lo, hi)` a CPU owns, without constructing a summary
/// object (tolerates `num_units == 0`, which the summary type rejects).
pub fn unit_range(
    policy: PartitionPolicy,
    direction: PartitionDirection,
    num_units: u64,
    cpu: usize,
    num_cpus: usize,
) -> (u64, u64) {
    if num_units == 0 {
        return (0, 0);
    }
    ArrayPartitioning::new(
        cdpc_core::summary::ArrayId(0),
        1,
        num_units,
        policy,
        direction,
    )
    .unit_range(cpu, num_cpus)
}

/// The byte intervals of its array that `cpu` touches through one access
/// of a loop distributed as (`policy`, `direction`) over `iterations`
/// units across `num_cpus` processors.
///
/// * `writes_only` restricts a stencil to its core (stencils write the
///   owned units; the halo is read-only).
/// * Returns `None` for [`AccessPattern::Irregular`] — no static bound.
/// * Intervals are clamped to the accessed region
///   `[0, iterations × unit_bytes)`; a stencil with periodic boundaries
///   (`wraparound`) may return two intervals.
#[allow(clippy::too_many_arguments)]
pub fn cpu_intervals(
    pattern: AccessPattern,
    iterations: u64,
    array_bytes: u64,
    policy: PartitionPolicy,
    direction: PartitionDirection,
    cpu: usize,
    num_cpus: usize,
    writes_only: bool,
) -> Option<Vec<Interval>> {
    match pattern {
        AccessPattern::Partitioned { unit_bytes } => {
            let (lo, hi) = unit_range(policy, direction, iterations, cpu, num_cpus);
            Some(byte_intervals(lo, hi, unit_bytes))
        }
        AccessPattern::Stencil {
            unit_bytes,
            halo_units,
            wraparound,
        } => {
            let (lo, hi) = unit_range(policy, direction, iterations, cpu, num_cpus);
            if lo == hi {
                return Some(Vec::new());
            }
            if writes_only {
                return Some(byte_intervals(lo, hi, unit_bytes));
            }
            let mut out = byte_intervals(
                lo.saturating_sub(halo_units),
                (hi + halo_units).min(iterations),
                unit_bytes,
            );
            if wraparound {
                // Periodic boundary: the first owner also reads the last
                // units and vice versa.
                if lo < halo_units {
                    let wrap_lo = iterations.saturating_sub(halo_units - lo);
                    out.extend(byte_intervals(wrap_lo, iterations, unit_bytes));
                }
                if hi + halo_units > iterations {
                    let wrap_hi = (hi + halo_units - iterations).min(iterations);
                    out.extend(byte_intervals(0, wrap_hi, unit_bytes));
                }
            }
            Some(normalize(out))
        }
        AccessPattern::WholeArray => Some(if array_bytes > 0 {
            vec![(0, array_bytes)]
        } else {
            Vec::new()
        }),
        AccessPattern::Irregular { .. } => None,
    }
}

fn byte_intervals(lo_unit: u64, hi_unit: u64, unit_bytes: u64) -> Vec<Interval> {
    if lo_unit >= hi_unit || unit_bytes == 0 {
        Vec::new()
    } else {
        vec![(lo_unit * unit_bytes, hi_unit * unit_bytes)]
    }
}

/// Sorts and merges touching/overlapping intervals.
pub fn normalize(mut intervals: Vec<Interval>) -> Vec<Interval> {
    intervals.retain(|&(a, b)| a < b);
    intervals.sort_unstable();
    let mut out: Vec<Interval> = Vec::with_capacity(intervals.len());
    for (a, b) in intervals {
        match out.last_mut() {
            Some(last) if a <= last.1 => last.1 = last.1.max(b),
            _ => out.push((a, b)),
        }
    }
    out
}

/// The intersection of two interval lists (both need not be normalized).
pub fn intersect(a: &[Interval], b: &[Interval]) -> Vec<Interval> {
    let mut out = Vec::new();
    for &(a0, a1) in a {
        for &(b0, b1) in b {
            let lo = a0.max(b0);
            let hi = a1.min(b1);
            if lo < hi {
                out.push((lo, hi));
            }
        }
    }
    normalize(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use AccessPattern as P;
    use PartitionDirection::Forward;
    use PartitionPolicy::Blocked;

    #[test]
    fn partitioned_footprints_tile_disjointly() {
        let fps: Vec<_> = (0..4)
            .map(|c| {
                cpu_intervals(
                    P::Partitioned { unit_bytes: 100 },
                    8,
                    800,
                    Blocked,
                    Forward,
                    c,
                    4,
                    false,
                )
                .unwrap()
            })
            .collect();
        assert_eq!(fps[0], vec![(0, 200)]);
        assert_eq!(fps[3], vec![(600, 800)]);
        for i in 0..4 {
            for j in i + 1..4 {
                assert!(intersect(&fps[i], &fps[j]).is_empty());
            }
        }
    }

    #[test]
    fn stencil_reads_extend_writes_do_not() {
        let pat = P::Stencil {
            unit_bytes: 100,
            halo_units: 1,
            wraparound: false,
        };
        let reads = cpu_intervals(pat, 8, 800, Blocked, Forward, 1, 4, false).unwrap();
        let writes = cpu_intervals(pat, 8, 800, Blocked, Forward, 1, 4, true).unwrap();
        assert_eq!(reads, vec![(100, 500)]); // units 2..4 plus one halo unit each side
        assert_eq!(writes, vec![(200, 400)]);
    }

    #[test]
    fn wraparound_stencil_wraps_both_ends() {
        let pat = P::Stencil {
            unit_bytes: 10,
            halo_units: 1,
            wraparound: true,
        };
        let first = cpu_intervals(pat, 8, 80, Blocked, Forward, 0, 4, false).unwrap();
        assert_eq!(first, vec![(0, 30), (70, 80)]);
        let last = cpu_intervals(pat, 8, 80, Blocked, Forward, 3, 4, false).unwrap();
        assert_eq!(last, vec![(0, 10), (50, 80)]);
    }

    #[test]
    fn irregular_has_no_static_footprint() {
        assert_eq!(
            cpu_intervals(
                P::Irregular {
                    touches_per_iter: 4
                },
                8,
                800,
                Blocked,
                Forward,
                0,
                4,
                false
            ),
            None
        );
    }

    #[test]
    fn normalize_merges_and_intersect_clips() {
        assert_eq!(
            normalize(vec![(5, 10), (0, 5), (20, 30)]),
            vec![(0, 10), (20, 30)]
        );
        assert_eq!(intersect(&[(0, 10)], &[(5, 20)]), vec![(5, 10)]);
        assert_eq!(intersect(&[(0, 5)], &[(5, 20)]), Vec::<Interval>::new());
    }

    #[test]
    fn zero_trip_loops_have_empty_footprints() {
        assert_eq!(unit_range(Blocked, Forward, 0, 0, 4), (0, 0));
        assert_eq!(
            cpu_intervals(
                P::Partitioned { unit_bytes: 100 },
                0,
                800,
                Blocked,
                Forward,
                0,
                4,
                false
            ),
            Some(Vec::new())
        );
        assert_eq!(
            cpu_intervals(
                P::Stencil {
                    unit_bytes: 100,
                    halo_units: 2,
                    wraparound: true
                },
                0,
                800,
                Blocked,
                Forward,
                0,
                4,
                false
            ),
            Some(Vec::new())
        );
        // A zero-byte array has no whole-array footprint either.
        assert_eq!(
            cpu_intervals(P::WholeArray, 0, 0, Blocked, Forward, 0, 4, false),
            Some(Vec::new())
        );
    }

    #[test]
    fn reverse_direction_mirrors_forward_ownership() {
        use PartitionDirection::Reverse;
        // Blocked, 10 units over 4 CPUs: per = 3, forward ranges
        // (0,3)(3,6)(6,9)(9,10). Reverse hands them out back to front.
        assert_eq!(unit_range(Blocked, Reverse, 10, 0, 4), (9, 10));
        assert_eq!(unit_range(Blocked, Reverse, 10, 3, 4), (0, 3));
        // 9 units: the forward-trailing empty range lands on the FIRST
        // reverse CPU.
        assert_eq!(unit_range(Blocked, Reverse, 9, 0, 4), (9, 9));
        assert_eq!(unit_range(Blocked, Reverse, 9, 1, 4), (6, 9));
        // Reverse footprints still tile the array disjointly and cover it.
        let fps: Vec<_> = (0..4)
            .map(|c| {
                cpu_intervals(
                    P::Partitioned { unit_bytes: 100 },
                    10,
                    1000,
                    Blocked,
                    Reverse,
                    c,
                    4,
                    false,
                )
                .unwrap()
            })
            .collect();
        for i in 0..4 {
            for j in i + 1..4 {
                assert!(intersect(&fps[i], &fps[j]).is_empty());
            }
        }
        let union = normalize(fps.into_iter().flatten().collect());
        assert_eq!(union, vec![(0, 1000)]);
    }

    #[test]
    fn single_page_array_footprints_share_one_page() {
        // 800 bytes — well under one 4 KB page. Every CPU's interval must
        // stay inside the array, and all of them land on the same page, so
        // page-level interference analysis sees exactly one page.
        const PAGE: u64 = 4096;
        let mut pages = std::collections::BTreeSet::new();
        for cpu in 0..4 {
            let fp = cpu_intervals(
                P::Partitioned { unit_bytes: 100 },
                8,
                800,
                Blocked,
                Forward,
                cpu,
                4,
                false,
            )
            .unwrap();
            for &(lo, hi) in &fp {
                assert!(hi <= 800, "cpu {cpu} escapes the array: ({lo}, {hi})");
                for page in lo / PAGE..=(hi - 1) / PAGE {
                    pages.insert(page);
                }
            }
        }
        assert_eq!(pages.len(), 1, "sub-page array occupies one page");
    }

    #[test]
    fn interval_straddling_the_last_color_wraps_to_color_zero() {
        use crate::machine::MachineModel;
        // 8-color machine: consecutive pages cycle colors 0..7, so an
        // interval spanning pages 7..=8 crosses from the LAST color back
        // to color 0 — its L2 set ranges are the two ends of the cache.
        let m = MachineModel {
            num_cpus: 2,
            page_bytes: 4096,
            l2_bytes: 32 << 10,
            l2_line_bytes: 128,
            l2_assoc: 1,
        };
        assert_eq!(m.num_colors(), 8);
        let (lo, hi) = (7 * 4096 - 100, 8 * 4096 + 100);
        let colors: Vec<u64> = (lo / 4096..=(hi - 1) / 4096)
            .map(|vpn| vpn % m.num_colors())
            .collect();
        assert_eq!(colors, vec![6, 7, 0]);
        // The straddled colors' set ranges are disjoint: the wrap is a
        // page-number artifact, not a cache-set overlap.
        let last = m.color_set_range(7);
        let first = m.color_set_range(0);
        assert_eq!(last.1, m.l2_sets());
        assert_eq!(first.0, 0);
        assert!(first.1 <= last.0);
    }
}
