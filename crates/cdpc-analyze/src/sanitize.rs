//! The runtime coherence sanitizer.
//!
//! [`SanitizerProbe`] is a [`Probe`] that shadows the simulator's MESI
//! protocol from its event stream alone and fails fast when an invariant
//! breaks. The memory system guarantees invalidations and downgrades are
//! reported *before* the requester's fill event, so online checking is
//! sound: at the instant a fill arrives, the shadow already reflects
//! every copy the protocol revoked for it.
//!
//! Shadow state is O(1) per event: one packed `u64` per external-cache
//! line (2 bits per CPU), a set of in-flight prefetches, and the set of
//! flushed physical pages. Invariants:
//!
//! * at most one `Modified`/`Exclusive` copy of a line, and never
//!   alongside other copies (`sanitize/multiple-owners`);
//! * a `Shared` fill never coexists with an owned copy
//!   (`sanitize/shared-with-owner`);
//! * a page flush leaves no shadow copy behind (`sanitize/stale-flush`);
//! * no fill lands on a flushed page before a page fault remaps it
//!   (`sanitize/flushed-page-access`);
//! * a prefetch is never issued for a line the CPU already has in flight
//!   (`sanitize/duplicate-prefetch`).
//!
//! Every `period` events (default 1024) a full sweep re-verifies the
//! sole-owner invariant across the whole shadow — an O(lines) safety net
//! against event orderings the incremental checks could miss.

use cdpc_core::fastmap::{FxMap64, FxSet64};
use cdpc_obs::{LineState, Probe};

use crate::diag::{Diagnostic, Location, Report, Severity};

/// Rule id: two owned (M/E) copies, or an owner alongside sharers.
pub const RULE_MULTIPLE_OWNERS: &str = "sanitize/multiple-owners";
/// Rule id: a Shared fill while another CPU owns the line.
pub const RULE_SHARED_WITH_OWNER: &str = "sanitize/shared-with-owner";
/// Rule id: a page flush reported while shadow copies remain.
pub const RULE_STALE_FLUSH: &str = "sanitize/stale-flush";
/// Rule id: a fill on a flushed (unmapped) physical page.
pub const RULE_FLUSHED_ACCESS: &str = "sanitize/flushed-page-access";
/// Rule id: duplicate in-flight prefetch for one (cpu, line).
pub const RULE_DUPLICATE_PREFETCH: &str = "sanitize/duplicate-prefetch";

fn inflight_key(line_addr: u64, cpu: usize) -> u64 {
    (line_addr << 5) | cpu as u64
}

const ABSENT: u64 = 0;
const SHARED: u64 = 1;
const EXCLUSIVE: u64 = 2;
const MODIFIED: u64 = 3;

/// Online MESI invariant checker; see the module docs.
pub struct SanitizerProbe {
    num_cpus: usize,
    /// line address → packed per-CPU state (2 bits each).
    shadow: FxMap64<u64>,
    /// `line_addr << 5 | cpu` for prefetches issued but not yet
    /// completed.
    inflight: FxSet64,
    /// Physical page bases flushed and not yet remapped.
    flushed: FxSet64,
    /// Page size learned from the first flush event (0 = none seen).
    page_bytes: u64,
    fail_fast: bool,
    violations: Vec<Diagnostic>,
    events: u64,
    period: u64,
    sweeps: u64,
}

impl SanitizerProbe {
    /// A fail-fast sanitizer: the first violation panics with a
    /// diagnostic message (the `--sanitize` mode).
    ///
    /// # Panics
    ///
    /// Panics if `num_cpus` is 0 or exceeds 32 (the shadow packs per-CPU
    /// state into one `u64`, like the simulator's directory mask).
    pub fn new(num_cpus: usize) -> Self {
        assert!((1..=32).contains(&num_cpus), "1..=32 CPUs supported");
        SanitizerProbe {
            num_cpus,
            shadow: FxMap64::new(),
            inflight: FxSet64::new(),
            flushed: FxSet64::new(),
            page_bytes: 0,
            fail_fast: true,
            violations: Vec::new(),
            events: 0,
            period: 1024,
            sweeps: 0,
        }
    }

    /// A collecting sanitizer: violations accumulate as diagnostics
    /// instead of panicking (for tests and reports).
    pub fn lenient(num_cpus: usize) -> Self {
        SanitizerProbe {
            fail_fast: false,
            ..SanitizerProbe::new(num_cpus)
        }
    }

    /// Overrides the full-sweep period (events between sweeps).
    pub fn with_period(mut self, period: u64) -> Self {
        self.period = period.max(1);
        self
    }

    /// Violations collected so far (always empty in fail-fast mode — it
    /// panics instead).
    pub fn violations(&self) -> &[Diagnostic] {
        &self.violations
    }

    /// `true` when no invariant has been violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Full sweeps performed so far.
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// Moves the collected violations into a [`Report`].
    pub fn drain_into(&mut self, report: &mut Report) {
        for d in self.violations.drain(..) {
            report.push(d);
        }
    }

    fn state_of(word: u64, cpu: usize) -> u64 {
        (word >> (2 * cpu)) & 0b11
    }

    fn violate(&mut self, rule: &'static str, message: String) {
        if self.fail_fast {
            panic!("coherence sanitizer: [{rule}] {message}");
        }
        self.violations.push(Diagnostic::new(
            rule,
            Severity::Error,
            Location::default(),
            message,
        ));
    }

    fn tick(&mut self) {
        self.events += 1;
        if self.events.is_multiple_of(self.period) {
            self.sweep();
        }
    }

    /// Re-verifies the sole-owner invariant across every shadowed line.
    fn sweep(&mut self) {
        self.sweeps += 1;
        let mut bad: Option<(u64, usize)> = None;
        for (line, &word) in self.shadow.iter() {
            let mut holders = 0usize;
            let mut owners = 0usize;
            for cpu in 0..self.num_cpus {
                match Self::state_of(word, cpu) {
                    ABSENT => {}
                    SHARED => holders += 1,
                    _ => {
                        holders += 1;
                        owners += 1;
                    }
                }
            }
            if owners > 1 || (owners == 1 && holders > 1) {
                bad = Some((line, holders));
                break;
            }
        }
        if let Some((line, holders)) = bad {
            self.violate(
                RULE_MULTIPLE_OWNERS,
                format!(
                    "sweep after {} events: line {line:#x} has an owned copy alongside \
                     {holders} total holders",
                    self.events
                ),
            );
        }
    }
}

impl Probe for SanitizerProbe {
    fn on_engine_restart(&mut self) {
        // The serial re-run replays every coherence event from a fresh
        // simulator; the shadow protocol state must restart empty too.
        self.shadow.clear();
        self.inflight.clear();
        self.flushed.clear();
        self.page_bytes = 0;
        self.violations.clear();
        self.events = 0;
        self.sweeps = 0;
    }

    fn on_line_state(&mut self, cpu: usize, line_addr: u64, state: LineState) {
        self.inflight.remove(inflight_key(line_addr, cpu));
        let word = self.shadow.get(line_addr).copied().unwrap_or(0);
        let others = word & !(0b11 << (2 * cpu));
        let encoded = match state {
            LineState::Invalid => ABSENT,
            LineState::Shared => SHARED,
            LineState::Exclusive => EXCLUSIVE,
            LineState::Modified => MODIFIED,
        };
        if encoded != ABSENT {
            if self.page_bytes > 0 && self.flushed.contains(line_addr & !(self.page_bytes - 1)) {
                self.violate(
                    RULE_FLUSHED_ACCESS,
                    format!(
                        "CPU {cpu} fills line {line_addr:#x} on a physical page that was \
                         flushed and never remapped"
                    ),
                );
            }
            if encoded >= EXCLUSIVE && others != 0 {
                let other = (0..self.num_cpus)
                    .find(|&c| c != cpu && Self::state_of(word, c) != ABSENT)
                    .unwrap_or(0);
                self.violate(
                    RULE_MULTIPLE_OWNERS,
                    format!(
                        "CPU {cpu} takes line {line_addr:#x} {} while CPU {other} still \
                         holds a copy",
                        state.label()
                    ),
                );
            }
            if encoded == SHARED {
                if let Some(owner) =
                    (0..self.num_cpus).find(|&c| c != cpu && Self::state_of(word, c) >= EXCLUSIVE)
                {
                    self.violate(
                        RULE_SHARED_WITH_OWNER,
                        format!(
                            "CPU {cpu} fills line {line_addr:#x} shared while CPU {owner} \
                             still owns it"
                        ),
                    );
                }
            }
        }
        let new_word = others | (encoded << (2 * cpu));
        if new_word == 0 {
            self.shadow.remove(line_addr);
        } else {
            self.shadow.insert(line_addr, new_word);
        }
        self.tick();
    }

    fn on_page_flush(&mut self, page_base: u64, page_bytes: u64) {
        self.page_bytes = page_bytes;
        let mut line = page_base;
        while line < page_base + page_bytes {
            if let Some(&word) = self.shadow.get(line) {
                if word != 0 {
                    let holder = (0..self.num_cpus)
                        .find(|&c| Self::state_of(word, c) != ABSENT)
                        .unwrap_or(0);
                    self.violate(
                        RULE_STALE_FLUSH,
                        format!(
                            "page {page_base:#x} flushed while CPU {holder} still holds \
                             line {line:#x}"
                        ),
                    );
                }
            }
            // Lines are at least 16 B in every configuration; stepping by
            // the true line size would need it here, but any divisor of it
            // only adds misses against an exact-keyed map.
            line += 16;
        }
        self.flushed.insert(page_base);
        self.tick();
    }

    fn on_prefetch_issued(&mut self, cpu: usize, _cycle: u64, line_addr: u64, _stall: u64) {
        if !self.inflight.insert(inflight_key(line_addr, cpu)) {
            self.violate(
                RULE_DUPLICATE_PREFETCH,
                format!("CPU {cpu} issues a prefetch for line {line_addr:#x} twice"),
            );
        }
        self.tick();
    }

    fn on_page_fault(
        &mut self,
        _cpu: usize,
        _cycle: u64,
        _vpn: u64,
        _color: u32,
        _outcome: cdpc_obs::HintOutcome,
    ) {
        // A fault means the allocator handed out a (possibly recycled)
        // physical page. The probe vocabulary cannot map vpn → frame, so
        // conservatively forget all flushed pages rather than flag a
        // legitimate reuse.
        self.flushed.clear();
        self.tick();
    }

    fn event_count(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdpc_memsim::{AccessKind, MemConfig, MemorySystem};
    use cdpc_vm::addr::{PhysAddr, VirtAddr};

    fn drive(sim: &mut MemorySystem<SanitizerProbe>) {
        // Reads, sharing, upgrades, evictions across a few pages and CPUs.
        for step in 0u64..200 {
            let cpu = (step % 4) as usize;
            let addr = ((step * 1664525) % (64 << 10)) & !0x7f;
            let kind = if step % 3 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            sim.access(cpu, step * 100, VirtAddr(addr), PhysAddr(addr), kind);
        }
    }

    #[test]
    fn clean_on_real_coherence_traffic() {
        let mut sim = MemorySystem::with_probe(
            MemConfig::paper_base(4),
            SanitizerProbe::lenient(4).with_period(64),
        );
        drive(&mut sim);
        sim.flush_physical_page(1_000_000, PhysAddr(0));
        sim.validate_coherence();
        assert!(
            sim.probe().is_clean(),
            "violations: {:?}",
            sim.probe().violations()
        );
        assert!(sim.probe().event_count() > 0);
        assert!(sim.probe().sweeps() > 0, "periodic sweep must have run");
    }

    #[test]
    fn second_owner_is_a_violation() {
        let mut s = SanitizerProbe::lenient(4);
        s.on_line_state(0, 0x1000, LineState::Modified);
        s.on_line_state(1, 0x1000, LineState::Modified); // no invalidation first
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].rule, RULE_MULTIPLE_OWNERS);
    }

    #[test]
    fn shared_fill_under_owner_is_a_violation() {
        let mut s = SanitizerProbe::lenient(4);
        s.on_line_state(0, 0x1000, LineState::Exclusive);
        s.on_line_state(1, 0x1000, LineState::Shared); // owner was not downgraded
        assert_eq!(s.violations()[0].rule, RULE_SHARED_WITH_OWNER);
    }

    #[test]
    fn downgrade_then_share_is_clean() {
        let mut s = SanitizerProbe::lenient(4);
        s.on_line_state(0, 0x1000, LineState::Exclusive);
        s.on_line_state(0, 0x1000, LineState::Shared); // downgrade first...
        s.on_line_state(1, 0x1000, LineState::Shared); // ...then the fill
        s.on_line_state(1, 0x1000, LineState::Invalid);
        s.on_line_state(0, 0x1000, LineState::Modified); // sole holder upgrades
        assert!(s.is_clean(), "violations: {:?}", s.violations());
    }

    #[test]
    fn stale_flush_and_flushed_access_are_violations() {
        let mut s = SanitizerProbe::lenient(2);
        s.on_line_state(0, 0x1080, LineState::Modified);
        s.on_page_flush(0x1000, 0x1000); // line 0x1080 was never dropped
        assert_eq!(s.violations()[0].rule, RULE_STALE_FLUSH);

        let mut s = SanitizerProbe::lenient(2);
        s.on_line_state(0, 0x1080, LineState::Modified);
        s.on_line_state(0, 0x1080, LineState::Invalid);
        s.on_page_flush(0x1000, 0x1000);
        s.on_line_state(1, 0x1080, LineState::Exclusive); // no fault in between
        assert_eq!(s.violations()[0].rule, RULE_FLUSHED_ACCESS);

        // A page fault forgets the flush: refills are legitimate again.
        let mut s = SanitizerProbe::lenient(2);
        s.on_page_flush(0x1000, 0x1000);
        s.on_page_fault(1, 0, 7, 3, cdpc_obs::HintOutcome::Honored);
        s.on_line_state(1, 0x1080, LineState::Exclusive);
        assert!(s.is_clean());
    }

    #[test]
    fn duplicate_prefetch_is_a_violation_and_fill_clears_it() {
        let mut s = SanitizerProbe::lenient(2);
        s.on_prefetch_issued(0, 0, 0x2000, 0);
        s.on_line_state(0, 0x2000, LineState::Exclusive); // completes
        s.on_line_state(0, 0x2000, LineState::Invalid);
        s.on_prefetch_issued(0, 10, 0x2000, 0); // re-issue is fine
        assert!(s.is_clean());
        s.on_prefetch_issued(0, 20, 0x2000, 0); // still in flight
        assert_eq!(s.violations()[0].rule, RULE_DUPLICATE_PREFETCH);
    }

    #[test]
    fn sweep_runs_on_period_and_accepts_clean_shadow() {
        let mut s = SanitizerProbe::lenient(2).with_period(2);
        s.on_line_state(0, 0x1000, LineState::Shared);
        s.on_line_state(1, 0x1000, LineState::Shared);
        s.on_line_state(0, 0x2000, LineState::Modified);
        s.on_line_state(0, 0x2000, LineState::Invalid);
        assert_eq!(s.sweeps(), 2);
        assert!(s.is_clean());
    }

    #[test]
    #[should_panic(expected = "coherence sanitizer")]
    fn fail_fast_panics_on_injected_violation() {
        let mut s = SanitizerProbe::new(2);
        s.on_line_state(0, 0x1000, LineState::Modified);
        s.on_line_state(1, 0x1000, LineState::Exclusive);
    }
}
