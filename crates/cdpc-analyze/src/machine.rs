//! The machine parameters the static lints reason about.
//!
//! A [`MachineModel`] is the analyzer's view of the target: enough cache
//! and page geometry to predict line sharing and color pressure, nothing
//! more. It can be built from the simulator's full
//! [`MemConfig`](cdpc_memsim::MemConfig) so a `--lint` bench run analyzes
//! exactly the machine it simulates.

use cdpc_memsim::MemConfig;

/// Cache/page geometry for the static analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineModel {
    /// Processor count.
    pub num_cpus: usize,
    /// Page size, bytes.
    pub page_bytes: u64,
    /// External (L2) cache size per CPU, bytes.
    pub l2_bytes: u64,
    /// External-cache line size, bytes.
    pub l2_line_bytes: u64,
    /// External-cache associativity.
    pub l2_assoc: u64,
}

impl MachineModel {
    /// The paper's base machine: 4 KB pages, 1 MB direct-mapped external
    /// cache with 128 B lines.
    pub fn paper_base(num_cpus: usize) -> Self {
        MachineModel {
            num_cpus,
            page_bytes: 4096,
            l2_bytes: 1 << 20,
            l2_line_bytes: 128,
            l2_assoc: 1,
        }
    }

    /// The analyzer view of a simulator configuration.
    pub fn from_mem(cfg: &MemConfig) -> Self {
        MachineModel {
            num_cpus: cfg.num_cpus,
            page_bytes: cfg.page_size as u64,
            l2_bytes: cfg.l2.size_bytes() as u64,
            l2_line_bytes: cfg.l2.line_bytes() as u64,
            l2_assoc: cfg.l2.associativity() as u64,
        }
    }

    /// Number of page colors: pages that map to disjoint cache sets.
    /// 1 means the cache cannot page-conflict (e.g. cache no larger than
    /// `associativity` pages).
    pub fn num_colors(&self) -> u64 {
        (self.l2_bytes / (self.page_bytes * self.l2_assoc)).max(1)
    }

    /// Pages of one CPU's cache (`colors × associativity`).
    pub fn cache_pages(&self) -> u64 {
        self.num_colors() * self.l2_assoc
    }

    /// Number of L2 cache sets (`size / (line × ways)`).
    pub fn l2_sets(&self) -> u64 {
        (self.l2_bytes / (self.l2_line_bytes * self.l2_assoc)).max(1)
    }

    /// Cache sets one page spans (`page / line`). Every page covers a
    /// contiguous, page-aligned block of this many sets, so two pages of
    /// the same color contend on *every* line index, and pages of
    /// different colors contend on none — the fact the interference
    /// equations rest on.
    pub fn sets_per_page(&self) -> u64 {
        (self.page_bytes / self.l2_line_bytes).max(1)
    }

    /// The L2 set range `[lo, hi)` that pages of `color` map to. Colors
    /// tile the set-index space in page-sized blocks:
    /// `num_colors × sets_per_page = l2_sets`.
    pub fn color_set_range(&self, color: u64) -> (u64, u64) {
        let spp = self.sets_per_page();
        let c = color % self.num_colors();
        (c * spp, (c + 1) * spp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn color_math_matches_paper() {
        let m = MachineModel::paper_base(8);
        assert_eq!(m.num_colors(), 256); // 1 MB / 4 KB pages, direct-mapped
        assert_eq!(m.cache_pages(), 256);
    }

    #[test]
    fn associativity_divides_colors() {
        let mut m = MachineModel::paper_base(4);
        m.l2_assoc = 2;
        assert_eq!(m.num_colors(), 128);
        assert_eq!(m.cache_pages(), 256);
    }

    #[test]
    fn set_geometry_tiles_the_cache() {
        let m = MachineModel::paper_base(8);
        // 1 MB / (128 B lines × 1 way) = 8192 sets; 4 KB / 128 B = 32
        // sets per page; 256 colors × 32 = 8192.
        assert_eq!(m.l2_sets(), 8192);
        assert_eq!(m.sets_per_page(), 32);
        assert_eq!(m.num_colors() * m.sets_per_page(), m.l2_sets());
        assert_eq!(m.color_set_range(0), (0, 32));
        assert_eq!(m.color_set_range(255), (255 * 32, 8192));
        // Colors wrap modulo the color count.
        assert_eq!(m.color_set_range(256), (0, 32));
        // Associativity shrinks the set count, not the per-page span.
        let mut w2 = m;
        w2.l2_assoc = 2;
        assert_eq!(w2.l2_sets(), 4096);
        assert_eq!(w2.sets_per_page(), 32);
        assert_eq!(w2.num_colors() * w2.sets_per_page(), w2.l2_sets());
    }

    #[test]
    fn from_mem_mirrors_config() {
        let cfg = MemConfig::paper_base(4);
        let m = MachineModel::from_mem(&cfg);
        assert_eq!(m.num_cpus, 4);
        assert_eq!(m.l2_bytes, 1 << 20);
        assert_eq!(m.l2_line_bytes, 128);
        assert_eq!(m.l2_assoc, 1);
        assert_eq!(m.page_bytes, 4096);
    }
}
