//! Structural consistency checks.
//!
//! Two families. [`check_program`] subsumes `Program::validate` — shape
//! errors in the IR itself (unknown arrays, degenerate loops, accesses
//! that run off the end of their array). [`check_summary`] audits a
//! derived [`AccessSummary`] against itself: partitionings that overlap
//! across processors, summaries larger than their array, communication
//! for arrays nobody partitioned, overlapping virtual address ranges.
//! The summary checks are what the seed-loop mutation tests drive: a
//! valid plan passes, a corrupted one names the corruption.

use cdpc_compiler::ir::{AccessPattern, Program, StmtKind};
use cdpc_core::summary::AccessSummary;

use crate::diag::{Diagnostic, Location, Report, Severity};
use crate::footprint::unit_range;

/// Rule id: access to an array the program never declared.
pub const RULE_UNKNOWN_ARRAY: &str = "struct/unknown-array";
/// Rule id: loop with zero iterations.
pub const RULE_ZERO_TRIP: &str = "struct/zero-trip-loop";
/// Rule id: affine access with a zero-byte unit.
pub const RULE_ZERO_UNIT: &str = "struct/zero-unit";
/// Rule id: affine access touching bytes past the array's end.
pub const RULE_ACCESS_EXCEEDS: &str = "struct/access-exceeds-array";
/// Rule id: nothing to analyze.
pub const RULE_EMPTY_PROGRAM: &str = "struct/empty-program";
/// Rule id: a partitioning summary covering more bytes than its array.
pub const RULE_SUMMARY_EXCEEDS: &str = "struct/summary-exceeds-array";
/// Rule id: two partitionings of one array give different processors
/// overlapping bytes.
pub const RULE_PARTITION_OVERLAP: &str = "struct/partition-overlap";
/// Rule id: a partitioning's per-CPU ranges do not cover its units.
pub const RULE_PARTITION_COVERAGE: &str = "struct/partition-coverage";
/// Rule id: communication summarized for an array with no partitioning.
pub const RULE_ORPHAN_COMM: &str = "struct/orphan-communication";
/// Rule id: two arrays' virtual ranges overlap.
pub const RULE_ARRAY_OVERLAP: &str = "struct/array-overlap";
/// Rule id: a group references an array the summary does not know.
pub const RULE_UNKNOWN_GROUP_MEMBER: &str = "struct/unknown-group-member";
/// Rule id: a processor owns no units of a partitioning.
pub const RULE_STARVED_CPU: &str = "struct/starved-cpu";
/// Rule id: an array neither partitioned nor marked shared.
pub const RULE_UNANALYZABLE: &str = "struct/unanalyzable-array";

/// Lints the IR itself. Returns `true` when a *fatal* shape error was
/// found — one that would make the downstream passes (partitioning
/// arithmetic, footprints) panic or lie, so analysis must stop here.
pub fn check_program(program: &Program, report: &mut Report) -> bool {
    let mut fatal = false;
    if program.phases.iter().all(|ph| ph.stmts.is_empty()) {
        report.push(Diagnostic::new(
            RULE_EMPTY_PROGRAM,
            Severity::Info,
            Location::default(),
            "program has no statements; nothing to analyze",
        ));
    }
    for phase in &program.phases {
        for stmt in &phase.stmts {
            let nest = &stmt.nest;
            let loc = |array: Option<&str>| Location {
                phase: Some(phase.name.clone()),
                loop_name: Some(nest.name.clone()),
                array: array.map(String::from),
            };
            if nest.iterations == 0 && stmt.kind != StmtKind::Sequential {
                fatal = true;
                report.push(Diagnostic::new(
                    RULE_ZERO_TRIP,
                    Severity::Error,
                    loc(None),
                    "loop has zero iterations; partitioning arithmetic is undefined",
                ));
            }
            for acc in &nest.accesses {
                let Some(decl) = program.arrays.get(acc.array.0) else {
                    fatal = true;
                    report.push(Diagnostic::new(
                        RULE_UNKNOWN_ARRAY,
                        Severity::Error,
                        loc(None),
                        format!(
                            "access names array #{} but only {} are declared",
                            acc.array.0,
                            program.arrays.len()
                        ),
                    ));
                    continue;
                };
                let unit = match acc.pattern {
                    AccessPattern::Partitioned { unit_bytes }
                    | AccessPattern::Stencil { unit_bytes, .. } => unit_bytes,
                    _ => continue,
                };
                if unit == 0 {
                    fatal = true;
                    report.push(Diagnostic::new(
                        RULE_ZERO_UNIT,
                        Severity::Error,
                        loc(Some(&decl.name)),
                        "affine access with a zero-byte unit",
                    ));
                } else if unit.saturating_mul(nest.iterations) > decl.bytes {
                    report.push(Diagnostic::new(
                        RULE_ACCESS_EXCEEDS,
                        Severity::Error,
                        loc(Some(&decl.name)),
                        format!(
                            "access touches {} B but `{}` holds only {} B",
                            unit * nest.iterations,
                            decl.name,
                            decl.bytes
                        ),
                    ));
                }
            }
        }
    }
    fatal
}

/// Audits a derived summary for internal consistency at `num_cpus`.
pub fn check_summary(summary: &AccessSummary, num_cpus: usize, report: &mut Report) {
    let name_of = |id: cdpc_core::summary::ArrayId| {
        summary
            .array(id)
            .map_or_else(|| format!("#{}", id.0), |a| a.name.clone())
    };

    for part in &summary.partitionings {
        let loc = Location::array(name_of(part.array));
        match summary.array(part.array) {
            None => report.push(Diagnostic::new(
                RULE_UNKNOWN_GROUP_MEMBER,
                Severity::Error,
                loc.clone(),
                "partitioning references an array the summary does not describe",
            )),
            Some(info) => {
                if part.unit_bytes.saturating_mul(part.num_units) > info.size_bytes {
                    report.push(Diagnostic::new(
                        RULE_SUMMARY_EXCEEDS,
                        Severity::Error,
                        loc.clone(),
                        format!(
                            "partitioning covers {} B ({} x {} B units) but `{}` holds {} B",
                            part.unit_bytes * part.num_units,
                            part.num_units,
                            part.unit_bytes,
                            info.name,
                            info.size_bytes
                        ),
                    ));
                }
            }
        }
        let mut covered = 0;
        let mut starved = Vec::new();
        for cpu in 0..num_cpus {
            let (lo, hi) = unit_range(part.policy, part.direction, part.num_units, cpu, num_cpus);
            covered += hi - lo;
            if lo == hi {
                starved.push(cpu);
            }
        }
        if covered != part.num_units {
            report.push(Diagnostic::new(
                RULE_PARTITION_COVERAGE,
                Severity::Error,
                loc.clone(),
                format!(
                    "per-CPU ranges cover {covered} of {} units at {num_cpus} CPUs",
                    part.num_units
                ),
            ));
        }
        if !starved.is_empty() {
            report.push(Diagnostic::new(
                RULE_STARVED_CPU,
                Severity::Info,
                loc,
                format!(
                    "{} of {num_cpus} CPUs own no units (blocked distribution of {} units); \
                     their caches idle while others sweep",
                    starved.len(),
                    part.num_units
                ),
            ));
        }
    }

    // Two different partitionings of one array handing different CPUs the
    // same bytes: the cross-loop version of a write-write race and the
    // "overlapping partitions" corruption the mutation tests inject.
    let mut overlap_flagged: Vec<cdpc_core::summary::ArrayId> = Vec::new();
    for (i, p1) in summary.partitionings.iter().enumerate() {
        for p2 in &summary.partitionings[i + 1..] {
            if p1.array != p2.array
                || (p1.unit_bytes, p1.num_units) == (p2.unit_bytes, p2.num_units)
                || overlap_flagged.contains(&p1.array)
            {
                continue;
            }
            'pairs: for c1 in 0..num_cpus {
                let (l1, h1) = unit_range(p1.policy, p1.direction, p1.num_units, c1, num_cpus);
                let (b1, e1) = (l1 * p1.unit_bytes, h1 * p1.unit_bytes);
                for c2 in 0..num_cpus {
                    if c1 == c2 {
                        continue;
                    }
                    let (l2, h2) = unit_range(p2.policy, p2.direction, p2.num_units, c2, num_cpus);
                    let (b2, e2) = (l2 * p2.unit_bytes, h2 * p2.unit_bytes);
                    if b1.max(b2) < e1.min(e2) {
                        overlap_flagged.push(p1.array);
                        report.push(Diagnostic::new(
                            RULE_PARTITION_OVERLAP,
                            Severity::Error,
                            Location::array(name_of(p1.array)),
                            format!(
                                "partitionings ({} B x {}) and ({} B x {}) give CPU {c1} and \
                                 CPU {c2} overlapping bytes [{:#x}, {:#x})",
                                p1.unit_bytes,
                                p1.num_units,
                                p2.unit_bytes,
                                p2.num_units,
                                b1.max(b2),
                                e1.min(e2)
                            ),
                        ));
                        break 'pairs;
                    }
                }
            }
        }
    }

    for comm in &summary.communications {
        if summary.partitionings_of(comm.array).next().is_none() {
            report.push(Diagnostic::new(
                RULE_ORPHAN_COMM,
                Severity::Error,
                Location::array(name_of(comm.array)),
                format!(
                    "communication of {} boundary units summarized for an array with no \
                     partitioning",
                    comm.width_units
                ),
            ));
        }
    }

    let mut by_start: Vec<_> = summary.arrays.iter().collect();
    by_start.sort_by_key(|a| a.start.0);
    for w in by_start.windows(2) {
        if w[1].start.0 < w[0].end().0 {
            report.push(Diagnostic::new(
                RULE_ARRAY_OVERLAP,
                Severity::Error,
                Location::array(w[0].name.clone()),
                format!(
                    "`{}` [{:#x}, {:#x}) overlaps `{}` starting at {:#x}",
                    w[0].name,
                    w[0].start.0,
                    w[0].end().0,
                    w[1].name,
                    w[1].start.0
                ),
            ));
        }
    }

    for group in &summary.groups {
        for &id in group.arrays() {
            if summary.array(id).is_none() {
                report.push(Diagnostic::new(
                    RULE_UNKNOWN_GROUP_MEMBER,
                    Severity::Error,
                    Location::array(format!("#{}", id.0)),
                    "group references an array the summary does not describe",
                ));
            }
        }
    }

    for info in &summary.arrays {
        if summary.partitionings_of(info.id).next().is_none()
            && !summary.shared_arrays.contains(&info.id)
        {
            report.push(Diagnostic::new(
                RULE_UNANALYZABLE,
                Severity::Info,
                Location::array(info.name.clone()),
                "array is neither partitioned nor read-shared; the compiler cannot color it",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdpc_compiler::ir::{
        Access, AccessPattern as P, ArrayRef, LoopNest, Phase, Program, Stmt, StmtKind,
    };
    use cdpc_core::summary::{
        ArrayId, ArrayInfo, ArrayPartitioning, CommunicationPattern, CommunicationSummary,
        PartitionDirection, PartitionPolicy,
    };
    use cdpc_vm::addr::VirtAddr;

    fn report() -> Report {
        Report::new("struct-test", 4, &[])
    }

    fn rules(r: &Report) -> Vec<&str> {
        r.diagnostics.iter().map(|d| d.rule.as_str()).collect()
    }

    fn valid_program() -> Program {
        let mut p = Program::new("ok");
        let a = p.array("A", 64 * 1024);
        p.phase(Phase {
            name: "main".into(),
            stmts: vec![Stmt {
                kind: StmtKind::Parallel,
                nest: LoopNest::new("l", 64, 100)
                    .with_access(Access::write(a, P::Partitioned { unit_bytes: 1024 })),
            }],
            count: 1,
        });
        p
    }

    fn part(array: usize, unit: u64, units: u64) -> ArrayPartitioning {
        ArrayPartitioning::new(
            ArrayId(array),
            unit,
            units,
            PartitionPolicy::Blocked,
            PartitionDirection::Forward,
        )
    }

    fn valid_summary() -> AccessSummary {
        AccessSummary {
            arrays: vec![
                ArrayInfo::new(ArrayId(0), "A", VirtAddr(0x1_0000), 64 * 1024),
                ArrayInfo::new(ArrayId(1), "B", VirtAddr(0x2_0000), 64 * 1024),
            ],
            partitionings: vec![part(0, 1024, 64), part(1, 1024, 64)],
            communications: vec![CommunicationSummary {
                array: ArrayId(0),
                pattern: CommunicationPattern::Shift,
                width_units: 1,
            }],
            groups: Vec::new(),
            shared_arrays: Vec::new(),
        }
    }

    #[test]
    fn valid_program_and_summary_are_clean() {
        let mut r = report();
        assert!(!check_program(&valid_program(), &mut r));
        check_summary(&valid_summary(), 4, &mut r);
        assert!(rules(&r).is_empty(), "got {:?}", rules(&r));
    }

    #[test]
    fn unknown_array_is_fatal() {
        let mut p = valid_program();
        p.phases[0].stmts[0].nest.accesses[0].array = ArrayRef(7);
        let mut r = report();
        assert!(check_program(&p, &mut r));
        assert_eq!(rules(&r), vec![RULE_UNKNOWN_ARRAY]);
    }

    #[test]
    fn zero_unit_and_zero_trip_are_fatal() {
        let mut p = valid_program();
        p.phases[0].stmts[0].nest.accesses[0].pattern = P::Partitioned { unit_bytes: 0 };
        let mut r = report();
        assert!(check_program(&p, &mut r));
        assert_eq!(rules(&r), vec![RULE_ZERO_UNIT]);

        let mut p = valid_program();
        p.phases[0].stmts[0].nest.iterations = 0;
        let mut r = report();
        assert!(check_program(&p, &mut r));
        assert!(rules(&r).contains(&RULE_ZERO_TRIP));
    }

    #[test]
    fn oversized_access_is_reported_but_not_fatal() {
        let mut p = valid_program();
        p.phases[0].stmts[0].nest.accesses[0].pattern = P::Partitioned { unit_bytes: 2048 };
        let mut r = report();
        assert!(!check_program(&p, &mut r));
        assert_eq!(rules(&r), vec![RULE_ACCESS_EXCEEDS]);
    }

    #[test]
    fn empty_program_is_informational() {
        let mut r = report();
        assert!(!check_program(&Program::new("empty"), &mut r));
        assert_eq!(rules(&r), vec![RULE_EMPTY_PROGRAM]);
        assert_eq!(r.counts(), (0, 0, 1));
    }

    #[test]
    fn shrunken_array_trips_summary_exceeds() {
        let mut s = valid_summary();
        s.arrays[0].size_bytes = 16 * 1024; // summary still claims 64 KB
        let mut r = report();
        check_summary(&s, 4, &mut r);
        assert!(rules(&r).contains(&RULE_SUMMARY_EXCEEDS));
    }

    #[test]
    fn mismatched_partitionings_trip_overlap() {
        let mut s = valid_summary();
        s.partitionings.push(part(0, 1536, 32)); // different tiling of A
        let mut r = report();
        check_summary(&s, 4, &mut r);
        assert!(rules(&r).contains(&RULE_PARTITION_OVERLAP));
    }

    #[test]
    fn orphan_communication_flagged() {
        let mut s = valid_summary();
        s.partitionings.remove(0); // A keeps its comm but loses its partitioning
        let mut r = report();
        check_summary(&s, 4, &mut r);
        assert!(rules(&r).contains(&RULE_ORPHAN_COMM));
        // And B's partitioning alone raises nothing.
        assert!(!rules(&r).contains(&RULE_PARTITION_OVERLAP));
    }

    #[test]
    fn overlapping_virtual_ranges_flagged() {
        let mut s = valid_summary();
        s.arrays[1].start = VirtAddr(0x1_8000); // inside A's 64 KB
        let mut r = report();
        check_summary(&s, 4, &mut r);
        assert!(rules(&r).contains(&RULE_ARRAY_OVERLAP));
    }

    #[test]
    fn starvation_and_unanalyzable_are_info_only() {
        let mut s = valid_summary();
        s.partitionings[0] = part(0, 1024, 2); // 2 units across 4 CPUs starves 2
        s.arrays
            .push(ArrayInfo::new(ArrayId(2), "C", VirtAddr(0x3_0000), 4096));
        let mut r = report();
        check_summary(&s, 4, &mut r);
        assert!(rules(&r).contains(&RULE_STARVED_CPU));
        assert!(rules(&r).contains(&RULE_UNANALYZABLE));
        let (e, _, _) = r.counts();
        assert_eq!(e, 0);
    }
}
