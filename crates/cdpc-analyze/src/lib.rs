//! Static analysis and runtime sanitizing for the CDPC stack.
//!
//! The compiler's summaries (partitionings, communication patterns,
//! layouts) make strong claims about a program: processors write
//! disjoint data, boundary overlap is stencil communication, page
//! placement decides cache conflicts. This crate *checks* those claims,
//! from two sides:
//!
//! * **Static lints** ([`analyze_program`]) over the IR, the parallel
//!   plan, the layout, and the access summary: a race detector
//!   ([`races`]), a false-sharing lint ([`sharing`]), a cache-color
//!   conflict predictor ([`conflict`]), and structural audits
//!   ([`structure`]). Findings are [`Diagnostic`]s collected in a
//!   [`Report`], rendered as text or JSON.
//! * **A runtime sanitizer** ([`SanitizerProbe`]): a
//!   [`Probe`](cdpc_obs::Probe) shadowing the simulator's MESI protocol
//!   online and failing fast on invariant violations.
//!
//! A program that deliberately triggers a rule (e.g. su2cor's irregular
//! gauge-field update) carries
//! [`allow_lint`](cdpc_compiler::ir::Program::allow_lint) annotations;
//! allowed Errors are reported but do not fail runs.

pub mod conflict;
pub mod diag;
pub mod footprint;
pub mod interference;
pub mod machine;
pub mod predict;
pub mod races;
pub mod sanitize;
pub mod sarif;
pub mod sharing;
pub mod structure;

pub use diag::{Diagnostic, FixIt, Location, Report, Severity};
pub use interference::{ColoringModel, InterferenceMap, RegionId};
pub use machine::MachineModel;
pub use predict::{predict_program, ConflictPrediction, ProverPolicy};
pub use sanitize::SanitizerProbe;
pub use sarif::reports_to_sarif;

use cdpc_compiler::ir::Program;
use cdpc_compiler::layout::DataLayout;
use cdpc_compiler::parallelize::ParallelPlan;
use cdpc_compiler::CompileOptions;
use cdpc_core::summary::AccessSummary;

/// Runs every static lint over `program` as `opts` would compile it for
/// the `machine` geometry.
///
/// Structural IR errors that would make the later passes panic (unknown
/// arrays, zero-trip loops) end the analysis early; everything else runs
/// the full pipeline: parallelize → layout → summarize → [`analyze_parts`].
pub fn analyze_program(program: &Program, opts: &CompileOptions, machine: &MachineModel) -> Report {
    let mut report = Report::new(&program.name, opts.num_cpus, &program.lint_allows);
    if structure::check_program(program, &mut report) {
        return report;
    }
    let plan = cdpc_compiler::parallelize::parallelize(program, &opts.parallelize_options());
    let layout = cdpc_compiler::layout::layout(program, &opts.layout_options());
    let summary = cdpc_compiler::summarize::summarize(program, &plan, &layout);
    analyze_parts(program, &plan, &layout, &summary, machine, &mut report);
    report.sort_stable();
    report
}

/// The lint pipeline over already-derived artifacts — what
/// [`analyze_program`] runs after its own derivation, public so tests
/// (and tools holding a `CompiledProgram`) can lint mutated parts.
pub fn analyze_parts(
    program: &Program,
    plan: &ParallelPlan,
    layout: &DataLayout,
    summary: &AccessSummary,
    machine: &MachineModel,
    report: &mut Report,
) {
    structure::check_summary(summary, plan.num_cpus(), report);
    races::check(program, plan, report);
    sharing::check(program, plan, layout, machine, report);
    conflict::check(program, plan, layout, machine, report);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdpc_compiler::ir::{Access, AccessPattern, LoopNest, Phase, Stmt, StmtKind};
    use cdpc_obs::SplitMix64;

    /// A random *valid* program: consistent units per array, arrays
    /// exactly as large as their sweeps, stencil halos for communication.
    fn random_valid_program(rng: &mut SplitMix64) -> Program {
        let mut p = Program::new("seeded");
        let narrays = 1 + rng.below(3) as usize;
        let mut decls = Vec::new();
        for i in 0..narrays {
            let unit = 128 * (1 + rng.below(8));
            let iters = 8 * (1 + rng.below(8));
            let a = p.array(format!("A{i}"), unit * iters);
            decls.push((a, unit, iters));
        }
        let mut stmts = Vec::new();
        for (si, &(a, unit, iters)) in decls.iter().enumerate() {
            // Enough work per iteration to clear the suppression
            // threshold at every drawn trip count.
            let mut nest = LoopNest::new(format!("sweep{si}"), iters, 500).with_access(
                Access::write(a, AccessPattern::Partitioned { unit_bytes: unit }),
            );
            if rng.below(2) == 0 {
                nest = nest.with_access(Access::read(
                    a,
                    AccessPattern::Stencil {
                        unit_bytes: unit,
                        halo_units: 1,
                        wraparound: rng.below(2) == 0,
                    },
                ));
            }
            stmts.push(Stmt {
                kind: StmtKind::Parallel,
                nest,
            });
        }
        p.phase(Phase {
            name: "steady".into(),
            stmts,
            count: 1,
        });
        p
    }

    #[test]
    fn seeded_valid_programs_have_no_errors() {
        let mut rng = SplitMix64::new(0xC0FFEE);
        for round in 0..50 {
            let program = random_valid_program(&mut rng);
            let cpus = [2, 4, 8][rng.below(3) as usize];
            let opts = CompileOptions::new(cpus);
            let report = analyze_program(&program, &opts, &MachineModel::paper_base(cpus));
            assert!(
                !report.has_errors(),
                "round {round} (cpus {cpus}) errored:\n{}",
                report.render()
            );
        }
    }

    #[test]
    fn seeded_mutations_trip_the_expected_rules() {
        let mut rng = SplitMix64::new(0xBADC0DE);
        for round in 0..25 {
            let program = random_valid_program(&mut rng);
            let cpus = 4;
            let opts = CompileOptions::new(cpus);
            let plan =
                cdpc_compiler::parallelize::parallelize(&program, &opts.parallelize_options());
            let layout = cdpc_compiler::layout::layout(&program, &opts.layout_options());
            let mut summary = cdpc_compiler::summarize::summarize(&program, &plan, &layout);
            let machine = MachineModel::paper_base(cpus);

            let expected = if round % 2 == 0 && !summary.partitionings.is_empty() {
                // Overlapping partitions: re-tile the first partitioned
                // array with a clashing unit size.
                let p0 = summary.partitionings[0];
                summary
                    .partitionings
                    .push(cdpc_core::summary::ArrayPartitioning::new(
                        p0.array,
                        p0.unit_bytes + 64,
                        p0.num_units.div_ceil(2).max(1),
                        p0.policy,
                        p0.direction,
                    ));
                structure::RULE_PARTITION_OVERLAP
            } else {
                // Shrunken array: the summary claims more bytes than exist.
                summary.arrays[0].size_bytes /= 2;
                structure::RULE_SUMMARY_EXCEEDS
            };

            let mut report = Report::new(&program.name, cpus, &[]);
            analyze_parts(&program, &plan, &layout, &summary, &machine, &mut report);
            assert!(
                report.with_rule(expected).next().is_some(),
                "round {round}: expected {expected}, got:\n{}",
                report.render()
            );
        }
    }

    #[test]
    fn empty_program_analysis_is_quiet() {
        let report = analyze_program(
            &Program::new("nothing"),
            &CompileOptions::new(4),
            &MachineModel::paper_base(4),
        );
        assert!(!report.has_errors());
        assert_eq!(report.counts(), (0, 0, 1)); // struct/empty-program info
    }
}

#[cfg(test)]
mod crosscheck {
    //! The conflict predictor against the simulator: statements the lint
    //! flags must correspond to simulated external-cache conflict misses.

    use super::*;
    use cdpc_machine::{run, PolicyKind, RunConfig};
    use cdpc_memsim::MemConfig;
    use cdpc_workloads::spec::Scale;

    /// A machine with the paper's geometry but a 64 KB external cache, so
    /// scaled workloads both fit (conflict, not capacity) and collide.
    fn scaled_mem(cpus: usize) -> MemConfig {
        let mut m = MemConfig::paper_base(cpus);
        m.l2 = m.l2.scaled_down(16); // 1 MB -> 64 KB, 16 colors
        m
    }

    fn check_workload(name: &str) {
        let cpus = 4;
        let mem = scaled_mem(cpus);
        let bench = cdpc_workloads::by_name(name).expect("workload exists");
        let program = (bench.build)(Scale::new(64));
        let opts = CompileOptions::new(cpus).with_l2_cache(mem.l2.size_bytes() as u64);

        let report = analyze_program(&program, &opts, &MachineModel::from_mem(&mem));
        let predicted = report
            .with_rule(conflict::RULE_COLOR_PRESSURE)
            .next()
            .is_some();

        let compiled = cdpc_compiler::compile(&program, &opts).expect("compiles");
        let sim = run(&compiled, &RunConfig::new(mem, PolicyKind::PageColoring));
        let simulated = sim.stalls.conflict;

        assert!(
            predicted,
            "{name}: predictor found no color pressure:\n{}",
            report.render()
        );
        assert!(
            simulated > 0,
            "{name}: predictor flags color pressure but the simulation saw \
             no conflict misses"
        );
    }

    #[test]
    fn tomcatv_prediction_matches_simulation() {
        check_workload("tomcatv");
    }

    #[test]
    fn swim_prediction_matches_simulation() {
        check_workload("swim");
    }
}
