//! SARIF 2.1.0 export for lint and prover findings.
//!
//! Hand-rolled over [`cdpc_obs::JsonValue`] like every other exporter in
//! the stack — no serde, no schema crate. The output is one SARIF log
//! with one run; findings map to `results`, rules are collected into the
//! tool's driver, and program locations (the IR has no files or lines)
//! become logical locations with `fullyQualifiedName =
//! "program::phase/loop/array"`. Allowed findings carry an `inSource`
//! suppression so CI annotators hide them, and the prover's extensions
//! ride along in `properties` (`confidence`, rendered `fixits`).

use cdpc_obs::JsonValue;

use crate::diag::{Report, Severity};

/// The schema URI stamped into every log (SARIF 2.1.0, OASIS standard).
pub const SARIF_SCHEMA: &str =
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json";

/// SARIF `level` for a severity.
fn level(severity: Severity) -> &'static str {
    match severity {
        Severity::Info => "note",
        Severity::Warn => "warning",
        Severity::Error => "error",
    }
}

/// Renders reports as one SARIF 2.1.0 log with a single run.
///
/// Rule metadata is deduplicated across all reports and sorted by id, so
/// `ruleIndex` values are stable for a given finding set. Callers wanting
/// deterministic result order should [`Report::sort_stable`] each report
/// first.
pub fn reports_to_sarif(reports: &[&Report]) -> JsonValue {
    // Collect the distinct rule ids, sorted for stable ruleIndex.
    let mut rule_ids: Vec<&str> = reports
        .iter()
        .flat_map(|r| r.diagnostics.iter())
        .map(|d| d.rule.as_str())
        .collect();
    rule_ids.sort_unstable();
    rule_ids.dedup();

    let mut rules = Vec::with_capacity(rule_ids.len());
    for id in &rule_ids {
        let mut rule = JsonValue::object();
        rule.push("id", JsonValue::Str((*id).to_string()));
        let mut desc = JsonValue::object();
        desc.push("text", JsonValue::Str(rule_description(id).to_string()));
        rule.push("shortDescription", desc);
        rules.push(rule);
    }

    let mut driver = JsonValue::object();
    driver.push("name", JsonValue::Str("cdpc-analyze".to_string()));
    driver.push(
        "version",
        JsonValue::Str(env!("CARGO_PKG_VERSION").to_string()),
    );
    driver.push(
        "informationUri",
        JsonValue::Str("https://github.com/cdpc/cdpc".to_string()),
    );
    driver.push("rules", JsonValue::Array(rules));
    let mut tool = JsonValue::object();
    tool.push("driver", driver);

    let mut results = Vec::new();
    for report in reports {
        for d in &report.diagnostics {
            let mut res = JsonValue::object();
            res.push("ruleId", JsonValue::Str(d.rule.clone()));
            let index = rule_ids
                .binary_search(&d.rule.as_str())
                .expect("rule id was collected");
            res.push("ruleIndex", JsonValue::UInt(index as u64));
            res.push("level", JsonValue::Str(level(d.severity).to_string()));
            let mut msg = JsonValue::object();
            msg.push("text", JsonValue::Str(d.message.clone()));
            res.push("message", msg);

            let mut logical = JsonValue::object();
            logical.push(
                "fullyQualifiedName",
                JsonValue::Str(format!("{}::{}", report.program, d.location.path())),
            );
            let mut loc = JsonValue::object();
            loc.push("logicalLocations", JsonValue::Array(vec![logical]));
            res.push("locations", JsonValue::Array(vec![loc]));

            let mut props = JsonValue::object();
            props.push("program", JsonValue::Str(report.program.clone()));
            props.push("allowed", JsonValue::Bool(d.allowed));
            if let Some(c) = d.confidence {
                props.push("confidence", JsonValue::UInt(u64::from(c)));
            }
            if !d.fixits.is_empty() {
                props.push(
                    "fixits",
                    JsonValue::Array(
                        d.fixits
                            .iter()
                            .map(|f| JsonValue::Str(f.render()))
                            .collect(),
                    ),
                );
            }
            res.push("properties", props);

            if d.allowed {
                let mut supp = JsonValue::object();
                supp.push("kind", JsonValue::Str("inSource".to_string()));
                res.push("suppressions", JsonValue::Array(vec![supp]));
            }
            results.push(res);
        }
    }

    let mut run = JsonValue::object();
    run.push("tool", tool);
    run.push("results", JsonValue::Array(results));

    let mut log = JsonValue::object();
    log.push("$schema", JsonValue::Str(SARIF_SCHEMA.to_string()));
    log.push("version", JsonValue::Str("2.1.0".to_string()));
    log.push("runs", JsonValue::Array(vec![run]));
    log
}

/// One-line description per rule family (SARIF requires rule metadata to
/// be useful to humans; unknown ids get a generic line).
fn rule_description(id: &str) -> &'static str {
    match id.split('/').next().unwrap_or("") {
        "race" => "Cross-processor data race detected from access summaries",
        "sharing" => "False sharing of an external-cache line across processors",
        "conflict" => "Cache-color pressure predicted from the page-level working set",
        "struct" => "Structural inconsistency between program and compiler summaries",
        "predict" => "Cache-set interference equation verdict from the static conflict prover",
        _ => "cdpc-analyze finding",
    }
}

/// Structural self-check used by tests and CI: asserts the invariants a
/// SARIF 2.1.0 consumer relies on. Returns an error message instead of
/// panicking so the CI gate can print it.
pub fn check_sarif_shape(log: &JsonValue) -> Result<(), String> {
    let need = |cond: bool, what: &str| {
        if cond {
            Ok(())
        } else {
            Err(format!("SARIF shape violation: {what}"))
        }
    };
    need(
        log.get("$schema").and_then(JsonValue::as_str) == Some(SARIF_SCHEMA),
        "$schema must name the 2.1.0 schema",
    )?;
    need(
        log.get("version").and_then(JsonValue::as_str) == Some("2.1.0"),
        "version must be \"2.1.0\"",
    )?;
    let runs = log
        .get("runs")
        .and_then(JsonValue::as_array)
        .ok_or("SARIF shape violation: runs must be an array".to_string())?;
    need(!runs.is_empty(), "runs must be non-empty")?;
    for run in runs {
        let driver = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .ok_or("SARIF shape violation: run.tool.driver missing".to_string())?;
        need(
            driver.get("name").and_then(JsonValue::as_str).is_some(),
            "driver.name must be a string",
        )?;
        let rules = driver
            .get("rules")
            .and_then(JsonValue::as_array)
            .ok_or("SARIF shape violation: driver.rules must be an array".to_string())?;
        let results = run
            .get("results")
            .and_then(JsonValue::as_array)
            .ok_or("SARIF shape violation: run.results must be an array".to_string())?;
        for res in results {
            let rule_id = res
                .get("ruleId")
                .and_then(JsonValue::as_str)
                .ok_or("SARIF shape violation: result.ruleId must be a string".to_string())?;
            let index = res
                .get("ruleIndex")
                .and_then(JsonValue::as_u64)
                .ok_or("SARIF shape violation: result.ruleIndex must be an integer".to_string())?;
            let declared = rules
                .get(index as usize)
                .and_then(|r| r.get("id"))
                .and_then(JsonValue::as_str);
            need(
                declared == Some(rule_id),
                "ruleIndex must point at the declared rule",
            )?;
            need(
                matches!(
                    res.get("level").and_then(JsonValue::as_str),
                    Some("note" | "warning" | "error")
                ),
                "level must be note|warning|error",
            )?;
            need(
                res.get("message")
                    .and_then(|m| m.get("text"))
                    .and_then(JsonValue::as_str)
                    .is_some(),
                "message.text must be a string",
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Diagnostic, FixIt, Location};

    fn sample_report() -> Report {
        let mut r = Report::new("101.tomcatv", 4, &["race/irregular-write".to_string()]);
        r.push(Diagnostic::new(
            "race/irregular-write",
            Severity::Error,
            Location::array("L"),
            "irregular write",
        ));
        r.push(
            Diagnostic::new(
                "predict/conflict-cell",
                Severity::Warn,
                Location::at("timestep", "-", "X"),
                "X and Y collide on color 3",
            )
            .with_confidence(100)
            .with_fixit(FixIt::PadArray {
                array: "X".into(),
                pad_pages: 2,
            }),
        );
        r.sort_stable();
        r
    }

    #[test]
    fn sarif_passes_its_own_schema_check() {
        let r = sample_report();
        let log = reports_to_sarif(&[&r]);
        check_sarif_shape(&log).expect("well-formed SARIF");
    }

    #[test]
    fn sarif_structure_golden() {
        let r = sample_report();
        let log = reports_to_sarif(&[&r]);
        assert_eq!(
            log.get("version").and_then(JsonValue::as_str),
            Some("2.1.0")
        );
        let run = &log.get("runs").and_then(JsonValue::as_array).unwrap()[0];
        let results = run.get("results").and_then(JsonValue::as_array).unwrap();
        assert_eq!(results.len(), 2);
        // sort_stable puts predict/ after race/? No: 'p' < 'r'.
        let first = &results[0];
        assert_eq!(
            first.get("ruleId").and_then(JsonValue::as_str),
            Some("predict/conflict-cell")
        );
        assert_eq!(
            first.get("level").and_then(JsonValue::as_str),
            Some("warning")
        );
        assert_eq!(
            first
                .get("properties")
                .and_then(|p| p.get("confidence"))
                .and_then(JsonValue::as_u64),
            Some(100)
        );
        assert_eq!(
            first
                .get("properties")
                .and_then(|p| p.get("fixits"))
                .and_then(JsonValue::as_array)
                .and_then(|a| a[0].as_str()),
            Some("pad array X by 2 page(s)")
        );
        assert!(first.get("suppressions").is_none(), "warn is not allowed");
        // The allowed race error carries a suppression.
        let second = &results[1];
        assert_eq!(
            second
                .get("suppressions")
                .and_then(JsonValue::as_array)
                .and_then(|s| s[0].get("kind"))
                .and_then(JsonValue::as_str),
            Some("inSource")
        );
        // Logical location is program-qualified.
        let fqn = first
            .get("locations")
            .and_then(JsonValue::as_array)
            .and_then(|l| l[0].get("logicalLocations"))
            .and_then(JsonValue::as_array)
            .and_then(|l| l[0].get("fullyQualifiedName"))
            .and_then(JsonValue::as_str);
        assert_eq!(fqn, Some("101.tomcatv::timestep/-/X"));
        // Round-trips through the parser.
        let parsed = JsonValue::parse(&log.to_string_pretty()).expect("valid JSON");
        check_sarif_shape(&parsed).expect("parsed SARIF keeps its shape");
    }

    #[test]
    fn shape_check_rejects_mangled_logs() {
        let r = sample_report();
        let mut log = reports_to_sarif(&[&r]);
        check_sarif_shape(&log).unwrap();
        log.push("version", JsonValue::Str("3.0.0".into()));
        // JsonValue::push replaces on duplicate key or appends; either way
        // the check must reject a wrong version.
        let mangled = JsonValue::parse(
            &log.to_string_compact()
                .replace("\"version\":\"2.1.0\"", "\"version\":\"9.9\""),
        )
        .unwrap();
        assert!(check_sarif_shape(&mangled).is_err());
    }
}
