//! The cache-color conflict predictor.
//!
//! The paper's core observation: with a physically indexed external
//! cache, the OS's page→frame assignment decides which virtual pages
//! collide in the cache. With naive (page-color = vpn mod colors)
//! placement, two hot pages whose vpns differ by `colors x page_size`
//! map to the same cache sets and evict each other on every sweep —
//! conflict misses that page coloring (the paper's §4) removes.
//!
//! The lint computes, per distributed statement and processor, the pages
//! the processor touches and their colors under vpn-mod placement. If
//! the footprint *fits* in the cache (so conflict, not capacity, is the
//! failure mode) but some color is loaded with more pages than the cache
//! has ways, the statement will thrash and is flagged
//! `conflict/color-pressure` (Warn).

use cdpc_compiler::ir::Program;
use cdpc_compiler::layout::DataLayout;
use cdpc_compiler::parallelize::{ParallelPlan, StmtSchedule};
use std::collections::{BTreeMap, BTreeSet};

use crate::diag::{Diagnostic, Location, Report, Severity};
use crate::footprint::cpu_intervals;
use crate::machine::MachineModel;

/// Rule id: more same-colored hot pages than cache ways.
pub const RULE_COLOR_PRESSURE: &str = "conflict/color-pressure";

/// Runs the conflict predictor over every distributed statement.
pub fn check(
    program: &Program,
    plan: &ParallelPlan,
    layout: &DataLayout,
    machine: &MachineModel,
    report: &mut Report,
) {
    let p = plan.num_cpus();
    let colors = machine.num_colors();
    let page = machine.page_bytes;
    if colors <= 1 || page == 0 {
        return;
    }
    for (pi, phase) in program.phases.iter().enumerate() {
        for (si, stmt) in phase.stmts.iter().enumerate() {
            let StmtSchedule::Distributed { policy, direction } = plan.schedule(pi, si) else {
                continue;
            };
            let nest = &stmt.nest;
            // Worst (cpu, color, pages-on-color, total-pages) over the stmt.
            let mut worst: Option<(usize, u64, u64, usize)> = None;
            for cpu in 0..p {
                let mut pages: BTreeSet<u64> = BTreeSet::new();
                for acc in &nest.accesses {
                    if acc.array.0 >= layout.bases.len() {
                        continue;
                    }
                    let bytes = program.arrays.get(acc.array.0).map_or(0, |d| d.bytes);
                    let Some(intervals) = cpu_intervals(
                        acc.pattern,
                        nest.iterations,
                        bytes,
                        policy,
                        direction,
                        cpu,
                        p,
                        false,
                    ) else {
                        continue; // irregular: no static page set
                    };
                    let base = layout.base(acc.array).0;
                    for (lo, hi) in intervals {
                        let first = (base + lo) / page;
                        let last = (base + hi - 1) / page;
                        pages.extend(first..=last);
                    }
                }
                // A footprint larger than the cache misses for capacity no
                // matter how pages are colored — not this lint's business.
                if pages.is_empty() || pages.len() as u64 > machine.cache_pages() {
                    continue;
                }
                let mut by_color: BTreeMap<u64, u64> = BTreeMap::new();
                for vpn in &pages {
                    *by_color.entry(vpn % colors).or_insert(0) += 1;
                }
                let (&color, &count) = by_color.iter().max_by_key(|&(_, c)| *c).unwrap();
                if count > machine.l2_assoc && worst.is_none_or(|(_, _, w, _)| count > w) {
                    worst = Some((cpu, color, count, pages.len()));
                }
            }
            if let Some((cpu, color, count, total)) = worst {
                let arrays: Vec<&str> = nest
                    .accesses
                    .iter()
                    .filter_map(|a| program.arrays.get(a.array.0).map(|d| d.name.as_str()))
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect();
                report.push(Diagnostic::new(
                    RULE_COLOR_PRESSURE,
                    Severity::Warn,
                    Location {
                        phase: Some(phase.name.clone()),
                        loop_name: Some(nest.name.clone()),
                        array: None,
                    },
                    format!(
                        "CPU {cpu} touches {total} pages that fit the cache, but {count} of \
                         them share color {color} against {}-way sets ({} colors): naive page \
                         placement will conflict-thrash arrays [{}]. Color pages explicitly \
                         (compiler hints) or stagger the array bases.",
                        machine.l2_assoc,
                        colors,
                        arrays.join(", ")
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdpc_compiler::ir::{Access, AccessPattern as P, LoopNest, Phase, Stmt, StmtKind};
    use cdpc_compiler::layout::DataLayout;
    use cdpc_compiler::parallelize::{parallelize, ParallelizeOptions};
    use cdpc_vm::addr::VirtAddr;

    /// 32 KB direct-mapped cache, 4 KB pages: 8 colors, 8 cache pages.
    fn small_machine() -> MachineModel {
        MachineModel {
            num_cpus: 2,
            page_bytes: 4096,
            l2_bytes: 32 << 10,
            l2_line_bytes: 128,
            l2_assoc: 1,
        }
    }

    /// Two arrays, each CPU touching two pages of each, at given bases.
    fn two_array_program() -> Program {
        let mut p = Program::new("conflict-test");
        let a = p.array("A", 16 * 1024);
        let b = p.array("B", 16 * 1024);
        p.phase(Phase {
            name: "main".into(),
            stmts: vec![Stmt {
                kind: StmtKind::Parallel,
                nest: LoopNest::new("sweep", 4, 100)
                    .with_access(Access::read(a, P::Partitioned { unit_bytes: 4096 }))
                    .with_access(Access::write(b, P::Partitioned { unit_bytes: 4096 })),
            }],
            count: 1,
        });
        p
    }

    fn lint_at(program: &Program, bases: Vec<u64>, machine: &MachineModel) -> Report {
        let plan = parallelize(
            program,
            &ParallelizeOptions {
                num_cpus: machine.num_cpus,
                suppress_threshold: 0,
                ..ParallelizeOptions::default()
            },
        );
        let lay = DataLayout {
            bases: bases.into_iter().map(VirtAddr).collect(),
            code_base: VirtAddr(0),
            total_data_bytes: 0,
        };
        let mut report = Report::new(&program.name, machine.num_cpus, &program.lint_allows);
        check(program, &plan, &lay, machine, &mut report);
        report
    }

    fn rules(r: &Report) -> Vec<&str> {
        r.diagnostics.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn cache_distance_bases_conflict() {
        // B exactly one cache size after A: every page of B shares its
        // color with the corresponding page of A.
        let p = two_array_program();
        let r = lint_at(&p, vec![0, 32 << 10], &small_machine());
        assert_eq!(rules(&r), vec![RULE_COLOR_PRESSURE]);
        assert!(r.diagnostics[0].message.contains("share color"));
    }

    #[test]
    fn multiple_of_cache_size_also_conflicts() {
        let p = two_array_program();
        let r = lint_at(&p, vec![0, 3 * (32 << 10)], &small_machine());
        assert_eq!(rules(&r), vec![RULE_COLOR_PRESSURE]);
    }

    #[test]
    fn higher_associativity_absorbs_two_way_pressure() {
        // Same colliding bases, but a 2-way cache holds both pages.
        let p = two_array_program();
        let mut m = small_machine();
        m.l2_assoc = 2;
        let r = lint_at(&p, vec![0, 64 << 10], &m);
        assert!(rules(&r).is_empty(), "got {:?}", rules(&r));
    }

    #[test]
    fn staggered_bases_are_clean() {
        // B offset by half the cache: A's and B's pages use distinct colors.
        let p = two_array_program();
        let r = lint_at(&p, vec![0, 48 << 10], &small_machine());
        assert!(rules(&r).is_empty(), "got {:?}", rules(&r));
    }

    #[test]
    fn capacity_sized_footprints_are_not_conflicts() {
        // One array far larger than the cache: every color is loaded, but
        // that is a capacity problem, not a placement problem.
        let mut p = Program::new("capacity");
        let a = p.array("A", 256 * 1024);
        p.phase(Phase {
            name: "main".into(),
            stmts: vec![Stmt {
                kind: StmtKind::Parallel,
                nest: LoopNest::new("sweep", 64, 100)
                    .with_access(Access::write(a, P::Partitioned { unit_bytes: 4096 })),
            }],
            count: 1,
        });
        let r = lint_at(&p, vec![0], &small_machine());
        assert!(rules(&r).is_empty(), "got {:?}", rules(&r));
    }

    #[test]
    fn irregular_accesses_have_no_prediction() {
        let mut p = Program::new("irregular");
        let a = p.array("A", 64 * 1024);
        p.phase(Phase {
            name: "main".into(),
            stmts: vec![Stmt {
                kind: StmtKind::Parallel,
                nest: LoopNest::new("gather", 64, 100).with_access(Access::read(
                    a,
                    P::Irregular {
                        touches_per_iter: 4,
                    },
                )),
            }],
            count: 1,
        });
        let r = lint_at(&p, vec![0], &small_machine());
        assert!(rules(&r).is_empty());
    }
}
