//! Sets of processors, as compact bitmasks.

use std::fmt;

/// A set of processor indices (0–63), stored as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ProcSet(u64);

impl ProcSet {
    /// The empty set.
    pub const EMPTY: ProcSet = ProcSet(0);

    /// Creates a set containing a single processor.
    ///
    /// # Panics
    ///
    /// Panics if `cpu >= 64`.
    pub fn singleton(cpu: usize) -> Self {
        assert!(cpu < 64, "processor index {cpu} out of range");
        ProcSet(1 << cpu)
    }

    /// Creates a set containing processors `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn all(n: usize) -> Self {
        assert!(n <= 64, "at most 64 processors supported");
        if n == 64 {
            ProcSet(u64::MAX)
        } else {
            ProcSet((1u64 << n) - 1)
        }
    }

    /// Builds a set from an iterator of processor indices.
    pub fn from_cpus<I: IntoIterator<Item = usize>>(cpus: I) -> Self {
        let mut s = ProcSet::EMPTY;
        for c in cpus {
            s = s.with(c);
        }
        s
    }

    /// Returns this set with `cpu` added.
    #[must_use]
    pub fn with(self, cpu: usize) -> Self {
        assert!(cpu < 64, "processor index {cpu} out of range");
        ProcSet(self.0 | (1 << cpu))
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: ProcSet) -> Self {
        ProcSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: ProcSet) -> Self {
        ProcSet(self.0 & other.0)
    }

    /// `true` when the sets share at least one processor.
    pub fn intersects(self, other: ProcSet) -> bool {
        self.0 & other.0 != 0
    }

    /// `true` when `cpu` is a member.
    pub fn contains(self, cpu: usize) -> bool {
        cpu < 64 && self.0 & (1 << cpu) != 0
    }

    /// Number of processors in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` for the empty set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of shared members with `other`.
    pub fn overlap(self, other: ProcSet) -> usize {
        (self.0 & other.0).count_ones() as usize
    }

    /// Iterates member indices in ascending order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..64).filter(move |&c| self.contains(c))
    }

    /// The raw bitmask.
    pub fn bits(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for ProcSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        Self::from_cpus(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_membership() {
        let s = ProcSet::from_cpus([0, 3, 5]);
        assert!(s.contains(0) && s.contains(3) && s.contains(5));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(ProcSet::EMPTY.is_empty());
    }

    #[test]
    fn all_covers_prefix() {
        assert_eq!(ProcSet::all(4), ProcSet::from_cpus([0, 1, 2, 3]));
        assert_eq!(ProcSet::all(64).len(), 64);
        assert_eq!(ProcSet::all(0), ProcSet::EMPTY);
    }

    #[test]
    fn set_algebra() {
        let a = ProcSet::from_cpus([0, 1]);
        let b = ProcSet::from_cpus([1, 2]);
        assert_eq!(a.union(b), ProcSet::from_cpus([0, 1, 2]));
        assert_eq!(a.intersection(b), ProcSet::singleton(1));
        assert!(a.intersects(b));
        assert_eq!(a.overlap(b), 1);
        assert!(!a.intersects(ProcSet::singleton(5)));
    }

    #[test]
    fn iteration_ascending() {
        let s = ProcSet::from_cpus([7, 2, 63]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 7, 63]);
    }

    #[test]
    fn display_lists_members() {
        assert_eq!(ProcSet::from_cpus([1, 4]).to_string(), "{1,4}");
        assert_eq!(ProcSet::EMPTY.to_string(), "{}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_large_indices() {
        ProcSet::singleton(64);
    }
}
