use std::error::Error;
use std::fmt;

use crate::summary::ArrayId;

/// Errors raised while validating summaries or generating hints.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CdpcError {
    /// A partitioning, communication, or group references an array that is
    /// not declared in the summary.
    UnknownArray(ArrayId),
    /// A partitioning covers more bytes than its array holds.
    PartitionExceedsArray {
        /// The offending array.
        array: ArrayId,
        /// Bytes implied by `unit_bytes * num_units`.
        partitioned: u64,
        /// The array's actual size.
        size: u64,
    },
    /// A communication summary references an array with no partitioning.
    CommunicationWithoutPartitioning(ArrayId),
}

impl fmt::Display for CdpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdpcError::UnknownArray(id) => {
                write!(f, "summary references undeclared array #{}", id.0)
            }
            CdpcError::PartitionExceedsArray {
                array,
                partitioned,
                size,
            } => write!(
                f,
                "partitioning of array #{} covers {partitioned} bytes but the array holds {size}",
                array.0
            ),
            CdpcError::CommunicationWithoutPartitioning(id) => write!(
                f,
                "communication summary for array #{} has no matching partitioning",
                id.0
            ),
        }
    }
}

impl Error for CdpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        let e = CdpcError::PartitionExceedsArray {
            array: ArrayId(3),
            partitioned: 100,
            size: 50,
        };
        assert!(e.to_string().contains("array #3"));
        assert!(e.to_string().contains("100"));
        assert_eq!(
            CdpcError::UnknownArray(ArrayId(7)).to_string(),
            "summary references undeclared array #7"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + Error>() {}
        check::<CdpcError>();
    }
}
