//! Static analysis of a coloring: predict cache behavior before running
//! anything.
//!
//! Given the hints (or any vpn→color assignment) and the access summary,
//! this module computes the quantities the paper reasons about
//! qualitatively:
//!
//! * the **per-processor color load** — how many of each CPU's pages share
//!   each color. The paper's objective 1 ("spread the load out evenly
//!   across the cache") means this histogram should be flat;
//! * the **overload** — pages beyond one per color per processor, a static
//!   proxy for conflict misses in a direct-mapped cache;
//! * the **cache utilization** — the fraction of colors a processor's
//!   pages touch at all (the under-utilization of Figure 3 shows up as a
//!   low value here).
//!
//! The experiment binaries use this to explain *why* a mapping performs
//! the way it does without re-running the simulator.

use std::collections::BTreeMap;

use cdpc_vm::addr::{Color, Vpn};

use crate::machine::MachineParams;
use crate::procset::ProcSet;
use crate::segments::build_segments;
use crate::summary::AccessSummary;
use crate::CdpcError;

/// Per-processor view of one coloring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuColorProfile {
    /// The processor.
    pub cpu: usize,
    /// Pages this processor accesses, per color.
    pub load: Vec<u32>,
}

impl CpuColorProfile {
    /// Total pages accessed by this processor.
    pub fn total_pages(&self) -> u32 {
        self.load.iter().sum()
    }

    /// Pages beyond one per color: a static proxy for direct-mapped
    /// conflict pressure.
    pub fn overload(&self) -> u32 {
        self.load.iter().map(|&l| l.saturating_sub(1)).sum()
    }

    /// Fraction of colors with at least one page (the cache-utilization
    /// measure behind Figure 3/5).
    pub fn utilization(&self) -> f64 {
        if self.load.is_empty() {
            return 0.0;
        }
        self.load.iter().filter(|&&l| l > 0).count() as f64 / self.load.len() as f64
    }

    /// Maximum pages on any single color (the hottest spot).
    pub fn peak(&self) -> u32 {
        self.load.iter().copied().max().unwrap_or(0)
    }
}

/// The full static profile of one coloring against one summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColoringProfile {
    /// One profile per processor.
    pub cpus: Vec<CpuColorProfile>,
}

impl ColoringProfile {
    /// Sum of per-processor overloads — the headline static conflict
    /// metric.
    pub fn total_overload(&self) -> u32 {
        self.cpus.iter().map(|c| c.overload()).sum()
    }

    /// Mean per-processor cache utilization.
    pub fn mean_utilization(&self) -> f64 {
        if self.cpus.is_empty() {
            return 0.0;
        }
        self.cpus.iter().map(|c| c.utilization()).sum::<f64>() / self.cpus.len() as f64
    }
}

/// Computes the per-processor color profile of an arbitrary coloring
/// function over the summary's pages.
///
/// `color_of` is consulted for every page of every analyzable array;
/// pages it declines to color (returns `None`) are skipped — matching how
/// unhinted pages are invisible to a static analysis (their color depends
/// on the fallback policy).
///
/// # Errors
///
/// Returns a [`CdpcError`] if the summary fails validation.
pub fn profile_coloring<F>(
    summary: &AccessSummary,
    machine: &MachineParams,
    mut color_of: F,
) -> Result<ColoringProfile, CdpcError>
where
    F: FnMut(Vpn) -> Option<Color>,
{
    let segments = build_segments(summary, machine)?;
    let geometry = machine.geometry();
    let num_colors = machine.colors().num_colors() as usize;
    let p = machine.num_cpus();

    // Page → union of accessing processors (pages straddling segments are
    // touched by both sides).
    let mut page_procs: BTreeMap<u64, ProcSet> = BTreeMap::new();
    for seg in &segments {
        let first = geometry.vpn_of(seg.start).0;
        let last = geometry
            .vpn_of(cdpc_vm::addr::VirtAddr(seg.start.0 + seg.bytes - 1))
            .0;
        for page in first..=last {
            let entry = page_procs.entry(page).or_insert(ProcSet::EMPTY);
            *entry = entry.union(seg.procs);
        }
    }

    let mut cpus: Vec<CpuColorProfile> = (0..p)
        .map(|cpu| CpuColorProfile {
            cpu,
            load: vec![0; num_colors],
        })
        .collect();
    for (&page, &procs) in &page_procs {
        let Some(color) = color_of(Vpn(page)) else {
            continue;
        };
        for cpu in procs.iter() {
            cpus[cpu].load[color.0 as usize] += 1;
        }
    }
    Ok(ColoringProfile { cpus })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hints::generate_hints;
    use crate::summary::{
        ArrayId, ArrayInfo, ArrayPartitioning, PartitionDirection, PartitionPolicy,
    };
    use cdpc_vm::addr::VirtAddr;

    const PAGE: u64 = 4096;

    fn two_array_summary() -> AccessSummary {
        let a = ArrayId(0);
        let b = ArrayId(1);
        AccessSummary {
            arrays: vec![
                ArrayInfo::new(a, "A", VirtAddr(0), 8 * PAGE),
                ArrayInfo::new(b, "B", VirtAddr(8 * PAGE), 8 * PAGE),
            ],
            partitionings: vec![
                ArrayPartitioning::new(
                    a,
                    PAGE,
                    8,
                    PartitionPolicy::Blocked,
                    PartitionDirection::Forward,
                ),
                ArrayPartitioning::new(
                    b,
                    PAGE,
                    8,
                    PartitionPolicy::Blocked,
                    PartitionDirection::Forward,
                ),
            ],
            ..Default::default()
        }
    }

    fn machine() -> MachineParams {
        MachineParams::new(2, PAGE as usize, 8 * PAGE as usize, 1) // 8 colors
    }

    #[test]
    fn page_coloring_profile_shows_the_pathology() {
        // Arrays exactly one cache apart: page coloring stacks A[i] and
        // B[i] on the same color → overload 8, half the colors idle per
        // CPU... here 8 colors, each CPU has 4+4 pages on 4 colors.
        let summary = two_array_summary();
        let colors = machine().colors();
        let profile =
            profile_coloring(&summary, &machine(), |vpn| Some(colors.color_of_vpn(vpn))).unwrap();
        assert_eq!(profile.total_overload(), 8, "every page pairs up");
        assert!((profile.mean_utilization() - 0.5).abs() < 1e-9);
        assert_eq!(profile.cpus[0].peak(), 2);
    }

    #[test]
    fn cdpc_profile_is_flat() {
        let summary = two_array_summary();
        let hints = generate_hints(&summary, &machine()).unwrap();
        let profile = profile_coloring(&summary, &machine(), |vpn| hints.color_of(vpn)).unwrap();
        assert_eq!(profile.total_overload(), 0, "one page per color per CPU");
        assert!((profile.mean_utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unhinted_pages_are_skipped() {
        let summary = two_array_summary();
        let profile = profile_coloring(&summary, &machine(), |_| None).unwrap();
        assert_eq!(profile.total_overload(), 0);
        assert_eq!(profile.mean_utilization(), 0.0);
        assert_eq!(profile.cpus.len(), 2);
    }

    #[test]
    fn profile_counts_each_cpu_page_once() {
        let summary = two_array_summary();
        let colors = machine().colors();
        let profile =
            profile_coloring(&summary, &machine(), |vpn| Some(colors.color_of_vpn(vpn))).unwrap();
        // Each CPU touches 8 pages (half of each array).
        for c in &profile.cpus {
            assert_eq!(c.total_pages(), 8);
        }
    }
}
