//! Access-pattern summaries — the interface between compiler and run-time.
//!
//! The compiler extracts three kinds of information (paper §5.1):
//!
//! * **Array partitioning** ([`ArrayPartitioning`]): the array's location
//!   and size, the *data partition unit* (the amount of data operated on in
//!   one parallel-loop iteration — e.g. one column of a 2-D array), the
//!   partitioning policy (even / blocked) and direction (forward /
//!   reverse).
//! * **Communication patterns** ([`CommunicationSummary`]): shift or rotate
//!   communication of boundary data between neighboring processors.
//! * **Group access information** ([`GroupAccess`]): sets of arrays
//!   accessed within the same loops.
//!
//! An [`AccessSummary`] bundles everything the run-time hint generator
//! needs. Arrays listed in [`AccessSummary::arrays`] but covered by no
//! partitioning and not listed in [`AccessSummary::shared_arrays`] are
//! *unanalyzable* (e.g. su2cor's irregularly-accessed structures): CDPC
//! leaves them unhinted, exactly as the paper describes.

use cdpc_vm::addr::VirtAddr;

/// Identifies one array (index into [`AccessSummary::arrays`] order is not
/// required; ids are opaque).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub usize);

/// An array's location in the virtual address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayInfo {
    /// The array's identifier.
    pub id: ArrayId,
    /// Human-readable name for reports.
    pub name: String,
    /// First byte of the array.
    pub start: VirtAddr,
    /// Total size in bytes.
    pub size_bytes: u64,
}

impl ArrayInfo {
    /// Creates array metadata.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero.
    pub fn new(id: ArrayId, name: impl Into<String>, start: VirtAddr, size_bytes: u64) -> Self {
        assert!(size_bytes > 0, "arrays must be non-empty");
        Self {
            id,
            name: name.into(),
            start,
            size_bytes,
        }
    }

    /// One-past-the-end byte address.
    pub fn end(&self) -> VirtAddr {
        VirtAddr(self.start.0 + self.size_bytes)
    }
}

/// How a parallel loop's iterations are distributed over processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionPolicy {
    /// Each processor gets a number of iterations as close to equal as
    /// possible (`⌊N/p⌋` or `⌈N/p⌉`).
    Even,
    /// Processors get `⌈N/p⌉` iterations each; the last may get fewer (and
    /// trailing processors may get none).
    Blocked,
}

/// Whether iterations are dealt from processor 0 upward or processor `p-1`
/// downward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionDirection {
    /// Unit 0 goes to processor 0.
    Forward,
    /// Unit 0 goes to processor `p-1`.
    Reverse,
}

/// One array's partitioning across the processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayPartitioning {
    /// The partitioned array.
    pub array: ArrayId,
    /// Bytes per data partition unit (e.g. the size of one column).
    pub unit_bytes: u64,
    /// Number of units in the distributed dimension.
    pub num_units: u64,
    /// Distribution policy.
    pub policy: PartitionPolicy,
    /// Distribution direction.
    pub direction: PartitionDirection,
}

impl ArrayPartitioning {
    /// Creates a partitioning summary.
    ///
    /// # Panics
    ///
    /// Panics if `unit_bytes` or `num_units` is zero.
    pub fn new(
        array: ArrayId,
        unit_bytes: u64,
        num_units: u64,
        policy: PartitionPolicy,
        direction: PartitionDirection,
    ) -> Self {
        assert!(unit_bytes > 0 && num_units > 0, "degenerate partitioning");
        Self {
            array,
            unit_bytes,
            num_units,
            policy,
            direction,
        }
    }

    /// The range of units `[lo, hi)` owned by `cpu` out of `num_cpus`,
    /// before applying direction.
    fn unit_range_forward(&self, cpu: usize, num_cpus: usize) -> (u64, u64) {
        let n = self.num_units;
        let p = num_cpus as u64;
        match self.policy {
            PartitionPolicy::Even => {
                let c = cpu as u64;
                ((c * n) / p, ((c + 1) * n) / p)
            }
            PartitionPolicy::Blocked => {
                let per = n.div_ceil(p);
                let lo = (cpu as u64 * per).min(n);
                let hi = (lo + per).min(n);
                (lo, hi)
            }
        }
    }

    /// The range of units `[lo, hi)` owned by `cpu` out of `num_cpus`.
    ///
    /// Empty ranges (`lo == hi`) occur for trailing processors of blocked
    /// partitions when `num_units < ⌈N/p⌉·p`.
    pub fn unit_range(&self, cpu: usize, num_cpus: usize) -> (u64, u64) {
        let logical = match self.direction {
            PartitionDirection::Forward => cpu,
            PartitionDirection::Reverse => num_cpus - 1 - cpu,
        };
        self.unit_range_forward(logical, num_cpus)
    }

    /// The owner of `unit` among `num_cpus`, or `None` for out-of-range
    /// units.
    pub fn owner_of(&self, unit: u64, num_cpus: usize) -> Option<usize> {
        if unit >= self.num_units {
            return None;
        }
        (0..num_cpus).find(|&c| {
            let (lo, hi) = self.unit_range(c, num_cpus);
            unit >= lo && unit < hi
        })
    }
}

/// The shape of neighbor communication over a partitioned array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommunicationPattern {
    /// Boundary units flow between adjacent processors (no wraparound).
    Shift,
    /// Like shift but the last and first processors also exchange.
    Rotate,
}

/// Communication summary: boundary `width_units` of `array`'s partitions
/// are also accessed by the neighboring processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommunicationSummary {
    /// The communicated array (must also have a partitioning).
    pub array: ArrayId,
    /// Shift or rotate.
    pub pattern: CommunicationPattern,
    /// Number of boundary units shared with each neighbor.
    pub width_units: u64,
}

/// A set of arrays accessed within the same loops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupAccess {
    arrays: Vec<ArrayId>,
}

impl GroupAccess {
    /// Creates a group from the arrays of one loop.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two arrays are given (a single array carries no
    /// grouping information).
    pub fn new(arrays: Vec<ArrayId>) -> Self {
        assert!(arrays.len() >= 2, "a group needs at least two arrays");
        Self { arrays }
    }

    /// The member arrays.
    pub fn arrays(&self) -> &[ArrayId] {
        &self.arrays
    }

    /// All unordered pairs within the group.
    pub fn pairs(&self) -> impl Iterator<Item = (ArrayId, ArrayId)> + '_ {
        self.arrays
            .iter()
            .enumerate()
            .flat_map(move |(i, &a)| self.arrays[i + 1..].iter().map(move |&b| (a, b)))
    }

    /// `true` when both arrays are members.
    pub fn contains_pair(&self, a: ArrayId, b: ArrayId) -> bool {
        self.arrays.contains(&a) && self.arrays.contains(&b)
    }
}

/// Everything the run-time hint generator consumes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccessSummary {
    /// All arrays of the program, including unanalyzable ones.
    pub arrays: Vec<ArrayInfo>,
    /// Partitionings; an array may appear several times when accessed
    /// differently in different loops (overlapping partitions).
    pub partitionings: Vec<ArrayPartitioning>,
    /// Boundary communication patterns.
    pub communications: Vec<CommunicationSummary>,
    /// Group access information.
    pub groups: Vec<GroupAccess>,
    /// Arrays accessed uniformly by every processor (read-shared tables):
    /// colored but not partitioned.
    pub shared_arrays: Vec<ArrayId>,
}

impl AccessSummary {
    /// Looks up an array's metadata.
    pub fn array(&self, id: ArrayId) -> Option<&ArrayInfo> {
        self.arrays.iter().find(|a| a.id == id)
    }

    /// Partitionings registered for an array.
    pub fn partitionings_of(&self, id: ArrayId) -> impl Iterator<Item = &ArrayPartitioning> {
        self.partitionings.iter().filter(move |p| p.array == id)
    }

    /// `true` when two arrays appear together in any group.
    pub fn grouped_together(&self, a: ArrayId, b: ArrayId) -> bool {
        self.groups.iter().any(|g| g.contains_pair(a, b))
    }

    /// Arrays CDPC can color: partitioned or marked shared.
    pub fn analyzable_arrays(&self) -> impl Iterator<Item = &ArrayInfo> {
        self.arrays.iter().filter(move |a| {
            self.partitionings.iter().any(|p| p.array == a.id) || self.shared_arrays.contains(&a.id)
        })
    }

    /// Total bytes across all arrays.
    pub fn total_bytes(&self) -> u64 {
        self.arrays.iter().map(|a| a.size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part(policy: PartitionPolicy, dir: PartitionDirection, units: u64) -> ArrayPartitioning {
        ArrayPartitioning::new(ArrayId(0), 1024, units, policy, dir)
    }

    #[test]
    fn even_partition_is_balanced() {
        let p = part(PartitionPolicy::Even, PartitionDirection::Forward, 10);
        let ranges: Vec<_> = (0..4).map(|c| p.unit_range(c, 4)).collect();
        assert_eq!(ranges, vec![(0, 2), (2, 5), (5, 7), (7, 10)]);
        // Sizes differ by at most one.
        let sizes: Vec<u64> = ranges.iter().map(|(a, b)| b - a).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn blocked_partition_gives_ceil_chunks() {
        let p = part(PartitionPolicy::Blocked, PartitionDirection::Forward, 10);
        assert_eq!(p.unit_range(0, 4), (0, 3));
        assert_eq!(p.unit_range(1, 4), (3, 6));
        assert_eq!(p.unit_range(2, 4), (6, 9));
        assert_eq!(p.unit_range(3, 4), (9, 10)); // short tail
    }

    #[test]
    fn blocked_partition_can_starve_trailing_cpus() {
        // The paper's applu: 33 iterations on 16 CPUs → ceil = 3, CPUs 11+
        // get nothing; "16 processors do not execute such loops more
        // efficiently than 11".
        let p = part(PartitionPolicy::Blocked, PartitionDirection::Forward, 33);
        let (lo, hi) = p.unit_range(11, 16);
        assert_eq!((lo, hi), (33, 33), "CPU 11 gets an empty range");
        let busy = (0..16).filter(|&c| {
            let (a, b) = p.unit_range(c, 16);
            b > a
        });
        assert_eq!(busy.count(), 11);
    }

    #[test]
    fn reverse_direction_mirrors_ownership() {
        let f = part(PartitionPolicy::Even, PartitionDirection::Forward, 8);
        let r = part(PartitionPolicy::Even, PartitionDirection::Reverse, 8);
        assert_eq!(f.unit_range(0, 4), r.unit_range(3, 4));
        assert_eq!(f.unit_range(3, 4), r.unit_range(0, 4));
    }

    #[test]
    fn owner_of_inverts_ranges() {
        let p = part(PartitionPolicy::Even, PartitionDirection::Forward, 10);
        for unit in 0..10 {
            let owner = p.owner_of(unit, 4).unwrap();
            let (lo, hi) = p.unit_range(owner, 4);
            assert!(unit >= lo && unit < hi);
        }
        assert_eq!(p.owner_of(10, 4), None);
    }

    #[test]
    fn group_pairs_enumerate_all() {
        let g = GroupAccess::new(vec![ArrayId(1), ArrayId(2), ArrayId(3)]);
        let pairs: Vec<_> = g.pairs().collect();
        assert_eq!(pairs.len(), 3);
        assert!(g.contains_pair(ArrayId(1), ArrayId(3)));
        assert!(!g.contains_pair(ArrayId(1), ArrayId(9)));
    }

    #[test]
    fn summary_identifies_unanalyzable_arrays() {
        let s = AccessSummary {
            arrays: vec![
                ArrayInfo::new(ArrayId(0), "part", VirtAddr(0), 4096),
                ArrayInfo::new(ArrayId(1), "irregular", VirtAddr(4096), 4096),
                ArrayInfo::new(ArrayId(2), "table", VirtAddr(8192), 4096),
            ],
            partitionings: vec![ArrayPartitioning::new(
                ArrayId(0),
                1024,
                4,
                PartitionPolicy::Even,
                PartitionDirection::Forward,
            )],
            communications: vec![],
            groups: vec![],
            shared_arrays: vec![ArrayId(2)],
        };
        let analyzable: Vec<_> = s.analyzable_arrays().map(|a| a.id).collect();
        assert_eq!(analyzable, vec![ArrayId(0), ArrayId(2)]);
        assert_eq!(s.total_bytes(), 3 * 4096);
    }
}
