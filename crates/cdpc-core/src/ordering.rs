//! Steps 2 and 3: ordering the uniform access sets, and the segments
//! within each set.
//!
//! Both steps build an undirected graph and look for a path visiting every
//! node once while using as many graph edges as possible (the path may also
//! jump between unconnected nodes). The paper uses simple greedy
//! heuristics, reproduced here:
//!
//! * **Sets** (step 2): nodes are access sets; edges connect sets with
//!   intersecting processor sets. Start from the subgraph of sets with one
//!   or two processors, beginning at a singleton, and greedily extend to an
//!   unvisited neighbor. Remaining sets are inserted next to the path node
//!   with the maximum processor-set overlap. The effect is to cluster each
//!   processor's pages: pages accessed by CPUs {0,1} land between the
//!   pages of CPU 0 alone and CPU 1 alone.
//! * **Segments within a set** (step 3): nodes are segments; edges connect
//!   segments whose arrays the compiler saw used in the same loop (group
//!   access information). Greedy path again, tie-breaking toward the
//!   smallest virtual address.

use crate::segments::AccessSet;
use crate::summary::AccessSummary;

/// Orders the uniform access sets (step 2). Consumes and returns the sets.
pub fn order_sets(mut sets: Vec<AccessSet>) -> Vec<AccessSet> {
    if sets.len() <= 1 {
        return sets;
    }
    // Deterministic starting arrangement: by (|procs|, first VA).
    sets.sort_by_key(|s| {
        (
            s.procs.len(),
            s.segments.first().map(|x| x.start).unwrap_or_default(),
        )
    });

    let n = sets.len();
    let small: Vec<usize> = (0..n).filter(|&i| sets[i].procs.len() <= 2).collect();
    let mut visited = vec![false; n];
    let mut path: Vec<usize> = Vec::with_capacity(n);

    // Walk the small-set subgraph starting from a singleton when possible.
    let mut cursor = small
        .iter()
        .copied()
        .find(|&i| sets[i].procs.len() == 1)
        .or_else(|| small.first().copied());
    while let Some(cur) = cursor {
        visited[cur] = true;
        path.push(cur);
        // Prefer an adjacent (intersecting) unvisited small node with the
        // largest overlap; otherwise any unvisited small node.
        let next = small
            .iter()
            .copied()
            .filter(|&j| !visited[j])
            .max_by_key(|&j| {
                (
                    sets[cur].procs.intersects(sets[j].procs) as usize,
                    sets[cur].procs.overlap(sets[j].procs),
                    usize::MAX - j, // earlier index wins ties
                )
            });
        cursor = next;
    }

    // Insert the remaining (large) sets next to the path node with maximum
    // processor overlap.
    let mut large: Vec<usize> = (0..n).filter(|&i| !visited[i]).collect();
    large.sort_by_key(|&i| {
        sets[i]
            .segments
            .first()
            .map(|x| x.start)
            .unwrap_or_default()
    });
    for i in large {
        if path.is_empty() {
            // No small sets at all (every set spans 3+ processors): start
            // the path with the first large set.
            path.push(i);
            continue;
        }
        let anchor = path
            .iter()
            .position(|&j| {
                let best = path
                    .iter()
                    .map(|&k| sets[i].procs.overlap(sets[k].procs))
                    .max()
                    .unwrap_or(0);
                sets[i].procs.overlap(sets[j].procs) == best
            })
            .unwrap_or(0);
        path.insert((anchor + 1).min(path.len()), i);
    }

    // Materialize in path order.
    let mut slots: Vec<Option<AccessSet>> = sets.into_iter().map(Some).collect();
    path.into_iter()
        .map(|i| slots[i].take().expect("each index visited once"))
        .collect()
}

/// Orders the segments within one access set (step 3), in place.
///
/// Uses the summary's group-access information: segments of arrays used
/// together are placed adjacently so their pages receive nearby colors.
pub fn order_segments_within(set: &mut AccessSet, summary: &AccessSummary) {
    let n = set.segments.len();
    if n <= 1 {
        return;
    }
    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);

    // Start from the smallest virtual address.
    let mut cursor = Some(
        (0..n)
            .min_by_key(|&i| set.segments[i].start)
            .expect("non-empty"),
    );
    while let Some(cur) = cursor {
        visited[cur] = true;
        order.push(cur);
        let cur_array = set.segments[cur].array;
        // Prefer an unvisited segment whose array is grouped with the
        // current one; tie-break toward the smallest address.
        let next = (0..n).filter(|&j| !visited[j]).min_by_key(|&j| {
            let grouped = summary.grouped_together(cur_array, set.segments[j].array)
                || cur_array == set.segments[j].array;
            (!grouped, set.segments[j].start)
        });
        cursor = next;
    }

    let mut slots: Vec<Option<_>> = set.segments.drain(..).map(Some).collect();
    set.segments = order
        .into_iter()
        .map(|i| slots[i].take().expect("each index visited once"))
        .collect();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procset::ProcSet;
    use crate::segments::UniformSegment;
    use crate::summary::{ArrayId, ArrayInfo, GroupAccess};
    use cdpc_vm::addr::VirtAddr;

    fn set(procs: ProcSet, start: u64) -> AccessSet {
        AccessSet {
            procs,
            segments: vec![UniformSegment {
                array: ArrayId(0),
                start: VirtAddr(start),
                bytes: 4096,
                procs,
            }],
        }
    }

    #[test]
    fn shared_set_lands_between_its_owners() {
        // Paper Figure 4(b): pages accessed by both CPUs go between the
        // pages of CPU 0 alone and CPU 1 alone.
        let ordered = order_sets(vec![
            set(ProcSet::singleton(0), 0),
            set(ProcSet::singleton(1), 8192),
            set(ProcSet::from_cpus([0, 1]), 4096),
        ]);
        let procs: Vec<ProcSet> = ordered.iter().map(|s| s.procs).collect();
        let pos = |p: ProcSet| procs.iter().position(|&x| x == p).unwrap();
        let shared = pos(ProcSet::from_cpus([0, 1]));
        let p0 = pos(ProcSet::singleton(0));
        let p1 = pos(ProcSet::singleton(1));
        assert!(
            (p0 < shared && shared < p1) || (p1 < shared && shared < p0),
            "shared set must sit between the singletons: {procs:?}"
        );
    }

    #[test]
    fn chain_of_neighbors_forms_a_path() {
        // Sets {0},{0,1},{1},{1,2},{2}: the greedy walk should produce a
        // processor-clustered chain.
        let ordered = order_sets(vec![
            set(ProcSet::singleton(2), 0),
            set(ProcSet::from_cpus([0, 1]), 4096),
            set(ProcSet::singleton(0), 8192),
            set(ProcSet::from_cpus([1, 2]), 12288),
            set(ProcSet::singleton(1), 16384),
        ]);
        // Every adjacent pair in the result should intersect (a perfect
        // path exists for this input).
        for w in ordered.windows(2) {
            assert!(
                w[0].procs.intersects(w[1].procs),
                "adjacent sets should share a processor: {} vs {}",
                w[0].procs,
                w[1].procs
            );
        }
    }

    #[test]
    fn large_sets_insert_next_to_max_overlap() {
        let ordered = order_sets(vec![
            set(ProcSet::all(4), 0),
            set(ProcSet::singleton(0), 4096),
            set(ProcSet::singleton(3), 8192),
        ]);
        assert_eq!(ordered.len(), 3);
        // The all-CPUs set must not be first (it was inserted after an
        // anchor in the small-set path).
        assert_ne!(ordered[0].procs, ProcSet::all(4));
    }

    #[test]
    fn ordering_preserves_every_set() {
        let input = vec![
            set(ProcSet::singleton(0), 0),
            set(ProcSet::singleton(1), 4096),
            set(ProcSet::from_cpus([0, 1]), 8192),
            set(ProcSet::all(3), 12288),
        ];
        let mut got: Vec<u64> = order_sets(input)
            .iter()
            .map(|s| s.segments[0].start.0)
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 4096, 8192, 12288]);
    }

    #[test]
    fn grouped_arrays_are_adjacent_within_a_set() {
        let procs = ProcSet::singleton(0);
        let seg = |array: usize, start: u64| UniformSegment {
            array: ArrayId(array),
            start: VirtAddr(start),
            bytes: 4096,
            procs,
        };
        let mut set = AccessSet {
            procs,
            // Address order: A(0), B(1), C(2), D(3); groups: {A,C}, {B,D}.
            segments: vec![seg(0, 0), seg(1, 4096), seg(2, 8192), seg(3, 12288)],
        };
        let summary = AccessSummary {
            arrays: (0..4)
                .map(|i| {
                    ArrayInfo::new(ArrayId(i), format!("a{i}"), VirtAddr(i as u64 * 4096), 4096)
                })
                .collect(),
            groups: vec![
                GroupAccess::new(vec![ArrayId(0), ArrayId(2)]),
                GroupAccess::new(vec![ArrayId(1), ArrayId(3)]),
            ],
            ..Default::default()
        };
        order_segments_within(&mut set, &summary);
        let order: Vec<usize> = set.segments.iter().map(|s| s.array.0).collect();
        assert_eq!(order, vec![0, 2, 1, 3], "grouped pairs must be adjacent");
    }

    #[test]
    fn ungrouped_segments_fall_back_to_address_order() {
        let procs = ProcSet::singleton(0);
        let seg = |array: usize, start: u64| UniformSegment {
            array: ArrayId(array),
            start: VirtAddr(start),
            bytes: 4096,
            procs,
        };
        let mut set = AccessSet {
            procs,
            segments: vec![seg(2, 8192), seg(0, 0), seg(1, 4096)],
        };
        let summary = AccessSummary::default();
        order_segments_within(&mut set, &summary);
        let starts: Vec<u64> = set.segments.iter().map(|s| s.start.0).collect();
        assert_eq!(starts, vec![0, 4096, 8192]);
    }
}
