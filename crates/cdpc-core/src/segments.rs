//! Step 1: building the uniform access segments.
//!
//! A *uniform access segment* is a maximal contiguous virtual-address
//! range accessed by one fixed set of processors. The algorithm (paper
//! §5.2 step 1) starts from whole arrays and splits them at partition
//! boundaries and wherever communication widens the accessing set — e.g. a
//! stencil's halo rows are touched by two neighboring processors while the
//! partition interior belongs to one.
//!
//! Segments from all arrays are then grouped by processor set into
//! *uniform access sets* ([`AccessSet`]) for the ordering steps.

use cdpc_vm::addr::VirtAddr;

use crate::machine::MachineParams;
use crate::procset::ProcSet;
use crate::summary::{AccessSummary, ArrayId, CommunicationPattern};
use crate::CdpcError;

/// A maximal address range accessed by one fixed processor set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniformSegment {
    /// The array this segment belongs to.
    pub array: ArrayId,
    /// First byte.
    pub start: VirtAddr,
    /// Length in bytes.
    pub bytes: u64,
    /// The processors that access the range.
    pub procs: ProcSet,
}

impl UniformSegment {
    /// One-past-the-end address.
    pub fn end(&self) -> VirtAddr {
        VirtAddr(self.start.0 + self.bytes)
    }
}

/// All segments sharing one processor set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessSet {
    /// The common processor set.
    pub procs: ProcSet,
    /// Member segments, in virtual-address order.
    pub segments: Vec<UniformSegment>,
}

impl AccessSet {
    /// Total bytes across member segments.
    pub fn total_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }
}

/// Validates a summary's internal references.
///
/// # Errors
///
/// See [`CdpcError`] for each condition.
pub fn validate(summary: &AccessSummary) -> Result<(), CdpcError> {
    for p in &summary.partitionings {
        let info = summary
            .array(p.array)
            .ok_or(CdpcError::UnknownArray(p.array))?;
        let covered = p.unit_bytes * p.num_units;
        if covered > info.size_bytes {
            return Err(CdpcError::PartitionExceedsArray {
                array: p.array,
                partitioned: covered,
                size: info.size_bytes,
            });
        }
    }
    for c in &summary.communications {
        if summary.array(c.array).is_none() {
            return Err(CdpcError::UnknownArray(c.array));
        }
        if summary.partitionings_of(c.array).next().is_none() {
            return Err(CdpcError::CommunicationWithoutPartitioning(c.array));
        }
    }
    for g in &summary.groups {
        for &a in g.arrays() {
            if summary.array(a).is_none() {
                return Err(CdpcError::UnknownArray(a));
            }
        }
    }
    for &a in &summary.shared_arrays {
        if summary.array(a).is_none() {
            return Err(CdpcError::UnknownArray(a));
        }
    }
    Ok(())
}

/// Builds the uniform access segments for every analyzable array.
///
/// Unanalyzable arrays (no partitioning, not shared) produce no segments —
/// CDPC leaves them to the OS's native policy.
///
/// # Errors
///
/// Returns a [`CdpcError`] if the summary fails [`validate`].
pub fn build_segments(
    summary: &AccessSummary,
    machine: &MachineParams,
) -> Result<Vec<UniformSegment>, CdpcError> {
    validate(summary)?;
    let p = machine.num_cpus();
    let mut out = Vec::new();
    for info in &summary.arrays {
        let partitionings: Vec<_> = summary.partitionings_of(info.id).collect();
        let is_shared = summary.shared_arrays.contains(&info.id);
        if partitionings.is_empty() {
            if is_shared {
                out.push(UniformSegment {
                    array: info.id,
                    start: info.start,
                    bytes: info.size_bytes,
                    procs: ProcSet::all(p),
                });
            }
            continue;
        }

        // Per-CPU extended byte ranges for every (partitioning,
        // communication) combination. Ranges may wrap for rotate patterns,
        // represented as up to two linear pieces.
        let mut ranges: Vec<(u64, u64, usize)> = Vec::new(); // [lo, hi) bytes, cpu
        for part in &partitionings {
            let widths: Vec<(u64, CommunicationPattern)> = summary
                .communications
                .iter()
                .filter(|c| c.array == info.id)
                .map(|c| (c.width_units, c.pattern))
                .collect();
            let total_units = part.num_units;
            for cpu in 0..p {
                let (lo, hi) = part.unit_range(cpu, p);
                if lo == hi {
                    continue;
                }
                ranges.push((lo * part.unit_bytes, hi * part.unit_bytes, cpu));
                for &(w, pattern) in &widths {
                    let w = w.min(total_units);
                    match pattern {
                        CommunicationPattern::Shift => {
                            let elo = lo.saturating_sub(w);
                            let ehi = (hi + w).min(total_units);
                            ranges.push((elo * part.unit_bytes, ehi * part.unit_bytes, cpu));
                        }
                        CommunicationPattern::Rotate => {
                            // Wrapping extension split into linear pieces.
                            if lo >= w {
                                ranges.push((
                                    (lo - w) * part.unit_bytes,
                                    lo * part.unit_bytes,
                                    cpu,
                                ));
                            } else {
                                ranges.push((0, lo * part.unit_bytes, cpu));
                                let wrap_lo = total_units + lo - w;
                                ranges.push((
                                    wrap_lo * part.unit_bytes,
                                    total_units * part.unit_bytes,
                                    cpu,
                                ));
                            }
                            if hi + w <= total_units {
                                ranges.push((
                                    hi * part.unit_bytes,
                                    (hi + w) * part.unit_bytes,
                                    cpu,
                                ));
                            } else {
                                ranges.push((
                                    hi * part.unit_bytes,
                                    total_units * part.unit_bytes,
                                    cpu,
                                ));
                                ranges.push((0, (hi + w - total_units) * part.unit_bytes, cpu));
                            }
                        }
                    }
                }
            }
        }
        if is_shared {
            ranges.push((0, info.size_bytes, usize::MAX)); // sentinel: all CPUs
        }

        // The partitioned prefix may not cover the whole array (e.g. a
        // trailing scalar block): the remainder is conservatively treated
        // as accessed by all processors.
        let covered: u64 = partitionings
            .iter()
            .map(|part| part.unit_bytes * part.num_units)
            .max()
            .unwrap_or(0);
        if covered < info.size_bytes && !is_shared {
            ranges.push((covered, info.size_bytes, usize::MAX));
        }

        // Elementary intervals between all breakpoints.
        let mut points: Vec<u64> = ranges
            .iter()
            .flat_map(|&(lo, hi, _)| [lo, hi])
            .chain([0, info.size_bytes])
            .collect();
        points.sort_unstable();
        points.dedup();

        let mut segs: Vec<UniformSegment> = Vec::new();
        for w in points.windows(2) {
            let (a, b) = (w[0], w[1]);
            if a >= b {
                continue;
            }
            let mut procs = ProcSet::EMPTY;
            for &(lo, hi, cpu) in &ranges {
                if a >= lo && a < hi {
                    procs = if cpu == usize::MAX {
                        ProcSet::all(p)
                    } else {
                        procs.with(cpu)
                    };
                }
            }
            if procs.is_empty() {
                continue;
            }
            // Merge with the previous segment when the set is unchanged and
            // the ranges are adjacent.
            if let Some(last) = segs.last_mut() {
                if last.procs == procs && last.end().0 == info.start.0 + a {
                    last.bytes += b - a;
                    continue;
                }
            }
            segs.push(UniformSegment {
                array: info.id,
                start: VirtAddr(info.start.0 + a),
                bytes: b - a,
                procs,
            });
        }
        out.extend(segs);
    }
    Ok(out)
}

/// Groups segments by processor set (step 1's output feeding step 2).
///
/// Sets appear in order of their first segment's virtual address; segments
/// within a set stay in address order.
pub fn group_into_sets(segments: Vec<UniformSegment>) -> Vec<AccessSet> {
    let mut sets: Vec<AccessSet> = Vec::new();
    for seg in segments {
        match sets.iter_mut().find(|s| s.procs == seg.procs) {
            Some(set) => set.segments.push(seg),
            None => sets.push(AccessSet {
                procs: seg.procs,
                segments: vec![seg],
            }),
        }
    }
    for set in &mut sets {
        set.segments.sort_by_key(|s| s.start);
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::{
        ArrayInfo, ArrayPartitioning, CommunicationSummary, PartitionDirection, PartitionPolicy,
    };

    const KB: u64 = 1024;

    fn machine(cpus: usize) -> MachineParams {
        MachineParams::new(cpus, 4096, 16 * 4096, 1)
    }

    fn one_array_summary(size: u64, parts: Vec<ArrayPartitioning>) -> AccessSummary {
        AccessSummary {
            arrays: vec![ArrayInfo::new(ArrayId(0), "A", VirtAddr(0), size)],
            partitionings: parts,
            communications: vec![],
            groups: vec![],
            shared_arrays: vec![],
        }
    }

    #[test]
    fn block_partition_yields_one_segment_per_cpu() {
        let s = one_array_summary(
            16 * KB,
            vec![ArrayPartitioning::new(
                ArrayId(0),
                KB,
                16,
                PartitionPolicy::Blocked,
                PartitionDirection::Forward,
            )],
        );
        let segs = build_segments(&s, &machine(4)).unwrap();
        assert_eq!(segs.len(), 4);
        for (i, seg) in segs.iter().enumerate() {
            assert_eq!(seg.start, VirtAddr(i as u64 * 4 * KB));
            assert_eq!(seg.bytes, 4 * KB);
            assert_eq!(seg.procs, ProcSet::singleton(i));
        }
    }

    #[test]
    fn shift_communication_creates_shared_boundaries() {
        let mut s = one_array_summary(
            16 * KB,
            vec![ArrayPartitioning::new(
                ArrayId(0),
                KB,
                16,
                PartitionPolicy::Blocked,
                PartitionDirection::Forward,
            )],
        );
        s.communications.push(CommunicationSummary {
            array: ArrayId(0),
            pattern: CommunicationPattern::Shift,
            width_units: 1,
        });
        let segs = build_segments(&s, &machine(2)).unwrap();
        // Layout: [0,7K) cpu0 | [7K,8K) cpu0+1 | [8K,9K) cpu0+1 | [9K,16K)
        // cpu1 — the two middle pieces merge into one {0,1} segment.
        assert_eq!(segs.len(), 3, "{segs:?}");
        assert_eq!(segs[0].procs, ProcSet::singleton(0));
        assert_eq!(segs[0].bytes, 7 * KB);
        assert_eq!(segs[1].procs, ProcSet::from_cpus([0, 1]));
        assert_eq!(segs[1].bytes, 2 * KB);
        assert_eq!(segs[2].procs, ProcSet::singleton(1));
        assert_eq!(segs[2].bytes, 7 * KB);
    }

    #[test]
    fn rotate_communication_wraps_around() {
        let mut s = one_array_summary(
            16 * KB,
            vec![ArrayPartitioning::new(
                ArrayId(0),
                KB,
                16,
                PartitionPolicy::Blocked,
                PartitionDirection::Forward,
            )],
        );
        s.communications.push(CommunicationSummary {
            array: ArrayId(0),
            pattern: CommunicationPattern::Rotate,
            width_units: 1,
        });
        let segs = build_segments(&s, &machine(2)).unwrap();
        // First and last units are now shared between CPU 1 and CPU 0.
        assert_eq!(segs.first().unwrap().procs, ProcSet::from_cpus([0, 1]));
        assert_eq!(segs.first().unwrap().bytes, KB);
        assert_eq!(segs.last().unwrap().procs, ProcSet::from_cpus([0, 1]));
        assert_eq!(segs.last().unwrap().bytes, KB);
    }

    #[test]
    fn overlapping_partitions_union_processor_sets() {
        // The same array partitioned forward in one loop and reverse in
        // another: every byte is accessed by two CPUs (except the middle
        // pieces where both assignments agree).
        let s = one_array_summary(
            16 * KB,
            vec![
                ArrayPartitioning::new(
                    ArrayId(0),
                    KB,
                    16,
                    PartitionPolicy::Blocked,
                    PartitionDirection::Forward,
                ),
                ArrayPartitioning::new(
                    ArrayId(0),
                    KB,
                    16,
                    PartitionPolicy::Blocked,
                    PartitionDirection::Reverse,
                ),
            ],
        );
        let segs = build_segments(&s, &machine(4)).unwrap();
        // CPU 0 owns [0,4K) forward; CPU 3 owns [0,4K) reverse → {0,3}.
        assert_eq!(segs[0].procs, ProcSet::from_cpus([0, 3]));
    }

    #[test]
    fn uncovered_tail_is_conservatively_shared() {
        let s = one_array_summary(
            16 * KB,
            vec![ArrayPartitioning::new(
                ArrayId(0),
                KB,
                12, // only 12 of 16 KB covered
                PartitionPolicy::Blocked,
                PartitionDirection::Forward,
            )],
        );
        let segs = build_segments(&s, &machine(2)).unwrap();
        let tail = segs.last().unwrap();
        assert_eq!(tail.start, VirtAddr(12 * KB));
        assert_eq!(tail.bytes, 4 * KB);
        assert_eq!(tail.procs, ProcSet::all(2));
    }

    #[test]
    fn shared_array_is_one_full_segment() {
        let s = AccessSummary {
            arrays: vec![ArrayInfo::new(ArrayId(0), "tbl", VirtAddr(0), 8 * KB)],
            partitionings: vec![],
            communications: vec![],
            groups: vec![],
            shared_arrays: vec![ArrayId(0)],
        };
        let segs = build_segments(&s, &machine(4)).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].procs, ProcSet::all(4));
        assert_eq!(segs[0].bytes, 8 * KB);
    }

    #[test]
    fn unanalyzable_array_produces_no_segments() {
        let s = AccessSummary {
            arrays: vec![ArrayInfo::new(ArrayId(0), "irr", VirtAddr(0), 8 * KB)],
            ..Default::default()
        };
        let segs = build_segments(&s, &machine(4)).unwrap();
        assert!(segs.is_empty());
    }

    #[test]
    fn segments_partition_each_analyzable_array_exactly() {
        let mut s = one_array_summary(
            16 * KB,
            vec![ArrayPartitioning::new(
                ArrayId(0),
                KB,
                16,
                PartitionPolicy::Even,
                PartitionDirection::Forward,
            )],
        );
        s.communications.push(CommunicationSummary {
            array: ArrayId(0),
            pattern: CommunicationPattern::Shift,
            width_units: 2,
        });
        let segs = build_segments(&s, &machine(3)).unwrap();
        // Coverage: contiguous, non-overlapping, total = array size.
        let mut cursor = 0;
        for seg in &segs {
            assert_eq!(seg.start.0, cursor, "gap or overlap at {cursor}");
            cursor = seg.end().0;
        }
        assert_eq!(cursor, 16 * KB);
        // Adjacent segments must differ in procs (maximality).
        for w in segs.windows(2) {
            assert_ne!(w[0].procs, w[1].procs, "non-maximal segments");
        }
    }

    #[test]
    fn grouping_collects_equal_procsets() {
        let seg = |start: u64, procs: ProcSet| UniformSegment {
            array: ArrayId(0),
            start: VirtAddr(start),
            bytes: KB,
            procs,
        };
        let sets = group_into_sets(vec![
            seg(0, ProcSet::singleton(0)),
            seg(1024, ProcSet::singleton(1)),
            seg(4096, ProcSet::singleton(0)),
        ]);
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].segments.len(), 2);
        assert_eq!(sets[0].total_bytes(), 2 * KB);
    }

    #[test]
    fn validation_rejects_unknown_and_oversized() {
        let mut s = one_array_summary(
            4 * KB,
            vec![ArrayPartitioning::new(
                ArrayId(9),
                KB,
                4,
                PartitionPolicy::Even,
                PartitionDirection::Forward,
            )],
        );
        assert_eq!(
            build_segments(&s, &machine(2)).unwrap_err(),
            CdpcError::UnknownArray(ArrayId(9))
        );
        s.partitionings[0].array = ArrayId(0);
        s.partitionings[0].num_units = 8; // 8 KB > 4 KB array
        assert!(matches!(
            build_segments(&s, &machine(2)).unwrap_err(),
            CdpcError::PartitionExceedsArray { .. }
        ));
    }
}
