//! Step 5 and the public entry point: round-robin color assignment and the
//! [`ColorHints`] product handed to the operating system.

use std::collections::HashMap;

use cdpc_vm::addr::{Color, ColorSpace, Vpn};
use cdpc_vm::hint_table::HintTable;

use crate::cyclic::{emit_page_order_with, PageOrder, PlacedSegment};
use crate::machine::MachineParams;
use crate::ordering::{order_segments_within, order_sets};
use crate::segments::{build_segments, group_into_sets};
use crate::summary::AccessSummary;
use crate::CdpcError;

/// The output of the CDPC algorithm: a coloring order over virtual pages.
///
/// Colors are implied by position: the `i`-th page of the order gets color
/// `i mod num_colors` (step 5). The order doubles as the *touch order* for
/// the user-level bin-hopping implementation
/// ([`cdpc_vm::touch::touch_order`] accepts it directly, since round-robin
/// assignments are always realizable).
#[derive(Debug, Clone, PartialEq)]
pub struct ColorHints {
    order: Vec<Vpn>,
    colors: ColorSpace,
    placements: Vec<PlacedSegment>,
    index: HashMap<Vpn, u32>,
}

impl ColorHints {
    /// Builds hints from an explicit page order (exposed for tests and the
    /// Figure 4 walkthrough; most callers use [`generate_hints`]).
    pub fn from_order(page_order: PageOrder, colors: ColorSpace) -> Self {
        let index = page_order
            .order
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        Self {
            order: page_order.order,
            colors,
            placements: page_order.placements,
            index,
        }
    }

    /// Number of hinted pages.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when no page received a hint.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The color space hints were generated for.
    pub fn colors(&self) -> ColorSpace {
        self.colors
    }

    /// The coloring (touch) order.
    pub fn order(&self) -> &[Vpn] {
        &self.order
    }

    /// Per-segment placement metadata, in emission order.
    pub fn placements(&self) -> &[PlacedSegment] {
        &self.placements
    }

    /// The preferred color of one page, if hinted.
    pub fn color_of(&self, vpn: Vpn) -> Option<Color> {
        self.index
            .get(&vpn)
            .map(|&i| Color(i % self.colors.num_colors()))
    }

    /// The `(page, color)` assignment in coloring order.
    pub fn assignments(&self) -> Vec<(Vpn, Color)> {
        self.order
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, Color(i as u32 % self.colors.num_colors())))
            .collect()
    }

    /// Converts to the `madvise`-style kernel hint table.
    pub fn to_hint_table(&self) -> HintTable {
        self.assignments().into_iter().collect()
    }
}

/// Ablation switches for the hint-generation pipeline.
///
/// Each flag disables one of the paper's algorithm steps, leaving the
/// rest intact — used by the ablation experiments to quantify what each
/// step contributes. All flags on (the default) is the full paper
/// algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HintOptions {
    /// Step 2: order the uniform access sets by the processor-set path
    /// heuristic. Off → sets stay in discovery (address) order, so one
    /// processor's pages scatter across the color space.
    pub order_sets: bool,
    /// Step 3: order segments within a set by group-access affinity.
    /// Off → virtual-address order.
    pub order_segments: bool,
    /// Step 4: cyclic page rotation to separate the starting colors of
    /// conflicting segments. Off → every segment starts at its natural
    /// cumulative color.
    pub cyclic_layout: bool,
}

impl Default for HintOptions {
    fn default() -> Self {
        Self {
            order_sets: true,
            order_segments: true,
            cyclic_layout: true,
        }
    }
}

impl HintOptions {
    /// The full paper algorithm.
    pub const FULL: HintOptions = HintOptions {
        order_sets: true,
        order_segments: true,
        cyclic_layout: true,
    };
}

/// Runs the complete five-step CDPC algorithm (paper §5.2).
///
/// # Errors
///
/// Returns a [`CdpcError`] when the summary is internally inconsistent
/// (unknown arrays, oversized partitionings, communication without
/// partitioning).
///
/// # Examples
///
/// See the [crate-level example](crate).
pub fn generate_hints(
    summary: &AccessSummary,
    machine: &MachineParams,
) -> Result<ColorHints, CdpcError> {
    generate_hints_with(summary, machine, HintOptions::FULL)
}

/// Like [`generate_hints`] but with per-step ablation switches.
///
/// # Errors
///
/// Same as [`generate_hints`].
pub fn generate_hints_with(
    summary: &AccessSummary,
    machine: &MachineParams,
    options: HintOptions,
) -> Result<ColorHints, CdpcError> {
    // Step 1: uniform access segments, grouped into sets.
    let segments = build_segments(summary, machine)?;
    let sets = group_into_sets(segments);
    // Step 2: order the sets.
    let mut sets = if options.order_sets {
        order_sets(sets)
    } else {
        sets
    };
    // Step 3: order segments within each set.
    if options.order_segments {
        for set in &mut sets {
            order_segments_within(set, summary);
        }
    }
    // Step 4: cyclic page layout.
    let page_order = emit_page_order_with(&sets, summary, machine, options.cyclic_layout);
    // Step 5: round-robin colors (implied by order).
    Ok(ColorHints::from_order(page_order, machine.colors()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::{
        ArrayId, ArrayInfo, ArrayPartitioning, CommunicationPattern, CommunicationSummary,
        GroupAccess, PartitionDirection, PartitionPolicy,
    };
    use cdpc_vm::addr::VirtAddr;

    const PAGE: u64 = 4096;

    /// The paper's Figure 4 setting: two data structures partitioned
    /// between two CPUs, used together, on a machine with a small cache.
    fn figure4_summary() -> AccessSummary {
        let a = ArrayId(0);
        let b = ArrayId(1);
        AccessSummary {
            arrays: vec![
                ArrayInfo::new(a, "A", VirtAddr(0), 8 * PAGE),
                ArrayInfo::new(b, "B", VirtAddr(8 * PAGE), 8 * PAGE),
            ],
            partitionings: vec![
                ArrayPartitioning::new(
                    a,
                    PAGE,
                    8,
                    PartitionPolicy::Blocked,
                    PartitionDirection::Forward,
                ),
                ArrayPartitioning::new(
                    b,
                    PAGE,
                    8,
                    PartitionPolicy::Blocked,
                    PartitionDirection::Forward,
                ),
            ],
            communications: vec![],
            groups: vec![GroupAccess::new(vec![a, b])],
            shared_arrays: vec![],
        }
    }

    fn figure4_machine() -> MachineParams {
        MachineParams::new(2, PAGE as usize, 4 * PAGE as usize, 1) // 4 colors
    }

    #[test]
    fn every_page_hinted_exactly_once() {
        let hints = generate_hints(&figure4_summary(), &figure4_machine()).unwrap();
        assert_eq!(hints.len(), 16);
        let mut seen = std::collections::HashSet::new();
        for &v in hints.order() {
            assert!(seen.insert(v), "page {v} hinted twice");
        }
    }

    #[test]
    fn colors_cycle_round_robin() {
        let hints = generate_hints(&figure4_summary(), &figure4_machine()).unwrap();
        for (i, (_, c)) in hints.assignments().iter().enumerate() {
            assert_eq!(c.0, i as u32 % 4);
        }
    }

    #[test]
    fn per_cpu_pages_spread_evenly_over_colors() {
        // Objective 1: the pages of each processor spread across the whole
        // cache. CPU0 owns A[0..4] and B[0..4] (8 pages, 4 colors → each
        // color exactly twice).
        let hints = generate_hints(&figure4_summary(), &figure4_machine()).unwrap();
        let table = hints.to_hint_table();
        let mut counts = [0u32; 4];
        for vpn in [0u64, 1, 2, 3, 8, 9, 10, 11] {
            counts[table.lookup(Vpn(vpn)).unwrap().0 as usize] += 1;
        }
        assert_eq!(
            counts,
            [2, 2, 2, 2],
            "CPU0's pages must cover all colors evenly"
        );
    }

    #[test]
    fn grouped_array_starts_differ_in_color() {
        // Objective 2 / Figure 4(c)-(d): the starting pages of A and B get
        // different colors even though they are 8 pages (2 cache sizes)
        // apart.
        let hints = generate_hints(&figure4_summary(), &figure4_machine()).unwrap();
        let table = hints.to_hint_table();
        assert_ne!(table.lookup(Vpn(0)), table.lookup(Vpn(8)));
    }

    #[test]
    fn cdpc_order_is_realizable_under_bin_hopping() {
        // The round-robin property is what makes the Digital UNIX
        // touch-order trick work; check it end to end.
        let hints = generate_hints(&figure4_summary(), &figure4_machine()).unwrap();
        cdpc_vm::touch::realizable(&hints.assignments(), hints.colors())
            .expect("CDPC assignments are always a cyclic color sequence");
    }

    #[test]
    fn unanalyzable_arrays_left_unhinted() {
        let mut s = figure4_summary();
        s.arrays.push(ArrayInfo::new(
            ArrayId(2),
            "irr",
            VirtAddr(16 * PAGE),
            4 * PAGE,
        ));
        let hints = generate_hints(&s, &figure4_machine()).unwrap();
        assert_eq!(hints.len(), 16, "irregular array contributes no hints");
        assert_eq!(hints.color_of(Vpn(17)), None);
    }

    #[test]
    fn stencil_boundaries_cluster_between_owners() {
        // A 16-page array with shift communication on 2 CPUs: the emission
        // order should place the shared boundary pages between the
        // CPU0-only and CPU1-only blocks (Figure 4(b)).
        let a = ArrayId(0);
        let s = AccessSummary {
            arrays: vec![ArrayInfo::new(a, "A", VirtAddr(0), 16 * PAGE)],
            partitionings: vec![ArrayPartitioning::new(
                a,
                PAGE,
                16,
                PartitionPolicy::Blocked,
                PartitionDirection::Forward,
            )],
            communications: vec![CommunicationSummary {
                array: a,
                pattern: CommunicationPattern::Shift,
                width_units: 1,
            }],
            groups: vec![],
            shared_arrays: vec![],
        };
        let m = MachineParams::new(2, PAGE as usize, 8 * PAGE as usize, 1);
        let hints = generate_hints(&s, &m).unwrap();
        let order: Vec<u64> = hints.order().iter().map(|v| v.0).collect();
        let pos = |p: u64| order.iter().position(|&x| x == p).unwrap();
        // Boundary pages are 7 and 8 ({0,1}); CPU0-only pages 0..7,
        // CPU1-only 9..16.
        let boundary = pos(7).max(pos(8));
        let cpu0_max = (0..7).map(pos).max().unwrap();
        let cpu1_min = (9..16).map(pos).min().unwrap();
        assert!(
            cpu0_max < boundary && boundary < cpu1_min,
            "boundary pages must sit between the single-CPU blocks: {order:?}"
        );
    }

    #[test]
    fn empty_summary_yields_empty_hints() {
        let hints = generate_hints(&AccessSummary::default(), &figure4_machine()).unwrap();
        assert!(hints.is_empty());
        assert!(hints.to_hint_table().is_empty());
    }

    #[test]
    fn hint_count_scales_with_processors() {
        // More CPUs → same pages, same hints (coloring is total either way)
        // but ordering changes; sanity check against panics across sizes.
        for p in [1, 2, 4, 8] {
            let m = MachineParams::new(p, PAGE as usize, 4 * PAGE as usize, 1);
            let hints = generate_hints(&figure4_summary(), &m).unwrap();
            assert_eq!(hints.len(), 16, "p={p}");
        }
    }

    #[test]
    fn color_of_matches_assignments() {
        let hints = generate_hints(&figure4_summary(), &figure4_machine()).unwrap();
        for (vpn, color) in hints.assignments() {
            assert_eq!(hints.color_of(vpn), Some(color));
        }
    }
}
