//! Step 4: cyclic page ordering within each segment.
//!
//! After steps 2–3 fix the order of sets and segments, the pages of each
//! segment could simply be laid down in ascending virtual-address order —
//! but then two arrays used together whose segments happen to start a
//! multiple of the cache size apart would still collide at their starting
//! locations. Instead the paper picks a *starting point* inside each
//! segment and wraps around: pages are emitted from the starting point to
//! the segment's end, then from the beginning up to the starting point
//! (Figure 4(c), where pages 8–10 are cyclically assigned so the two
//! arrays' first pages no longer share a color).
//!
//! Two segments *may conflict* when (paper §5.2, step 4):
//! 1. their arrays are used together in the same loop (group access), and
//! 2. the intersection of their processor sets is non-empty, and
//! 3. they (partially) overlap in the cache.
//!
//! The starting points are chosen to spread the first pages of conflicting
//! segments as far apart in color space as possible.

use cdpc_vm::addr::Vpn;
use std::collections::HashSet;

use crate::machine::MachineParams;
use crate::segments::AccessSet;
use crate::summary::{AccessSummary, ArrayId};

/// Where one segment ended up in the final coloring order (for reports and
/// the Figure 4 walkthrough).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacedSegment {
    /// The segment's array.
    pub array: ArrayId,
    /// The color assigned to the segment's first (lowest-VA) page.
    pub start_color: u32,
    /// Number of pages this segment contributed to the order.
    pub pages: usize,
}

/// The result of the cyclic layout: the global page emission order plus
/// per-segment placement metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageOrder {
    /// Pages in coloring order; round-robin color assignment over this
    /// sequence is step 5.
    pub order: Vec<Vpn>,
    /// Placement of each segment, in emission order.
    pub placements: Vec<PlacedSegment>,
}

/// Lays out the pages of the ordered sets (step 4).
///
/// Pages shared by two adjacent segments (a segment boundary inside a page)
/// are emitted once, by the first segment that reaches them.
pub fn emit_page_order(
    sets: &[AccessSet],
    summary: &AccessSummary,
    machine: &MachineParams,
) -> PageOrder {
    emit_page_order_with(sets, summary, machine, true)
}

/// Like [`emit_page_order`] but with the cyclic rotation switchable off
/// (for ablation studies): with `rotate` false every segment keeps its
/// natural start color.
pub fn emit_page_order_with(
    sets: &[AccessSet],
    summary: &AccessSummary,
    machine: &MachineParams,
    rotate: bool,
) -> PageOrder {
    let geometry = machine.geometry();
    let num_colors = machine.colors().num_colors();
    let mut emitted: HashSet<u64> = HashSet::new();
    let mut order: Vec<Vpn> = Vec::new();
    let mut placements: Vec<PlacedSegment> = Vec::new();
    // (array, procs, start_color) of previously placed segments, for the
    // conflict rule.
    let mut placed_meta: Vec<(ArrayId, crate::procset::ProcSet, u32)> = Vec::new();

    for set in sets {
        for seg in &set.segments {
            let first_vpn = geometry.vpn_of(seg.start).0;
            let last_vpn = geometry
                .vpn_of(cdpc_vm::addr::VirtAddr(seg.start.0 + seg.bytes - 1))
                .0;
            let pages: Vec<u64> = (first_vpn..=last_vpn)
                .filter(|p| !emitted.contains(p))
                .collect();
            if pages.is_empty() {
                continue;
            }
            let n = pages.len();
            let cum = order.len() as u32;

            // Start colors of previously placed conflicting segments.
            let conflicts: Vec<u32> = placed_meta
                .iter()
                .filter(|(arr, procs, _)| {
                    (*arr == seg.array || summary.grouped_together(*arr, seg.array))
                        && procs.intersects(seg.procs)
                })
                .map(|&(_, _, c)| c)
                .collect();

            // Choose the shift k (0..min(n, colors)) of the first page's
            // color that maximizes the minimum circular distance to all
            // conflicting start colors; k = 0 keeps natural order.
            let max_k = (n as u32).min(num_colors);
            let best_k = if !rotate || conflicts.is_empty() {
                0
            } else {
                (0..max_k)
                    .max_by_key(|&k| {
                        let s = (cum + k) % num_colors;
                        let dmin = conflicts
                            .iter()
                            .map(|&c| {
                                let d = (s + num_colors - c) % num_colors;
                                d.min(num_colors - d)
                            })
                            .min()
                            .unwrap_or(num_colors);
                        (dmin, u32::MAX - k) // prefer smaller k on ties
                    })
                    .unwrap_or(0)
            };
            let start_color = (cum + best_k) % num_colors;

            // Emitting from index `rot` gives the first page color
            // (cum + (n - rot) mod n); invert for rot.
            let rot = (n - (best_k as usize % n)) % n;
            for &p in pages[rot..].iter().chain(pages[..rot].iter()) {
                emitted.insert(p);
                order.push(Vpn(p));
            }

            placements.push(PlacedSegment {
                array: seg.array,
                start_color,
                pages: n,
            });
            placed_meta.push((seg.array, seg.procs, start_color));
        }
    }

    PageOrder { order, placements }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procset::ProcSet;
    use crate::segments::UniformSegment;
    use crate::summary::{ArrayInfo, GroupAccess};
    use cdpc_vm::addr::VirtAddr;

    const PAGE: u64 = 4096;

    fn machine(colors: u32) -> MachineParams {
        MachineParams::new(2, PAGE as usize, colors as usize * PAGE as usize, 1)
    }

    fn seg(array: usize, start_page: u64, pages: u64, procs: ProcSet) -> UniformSegment {
        UniformSegment {
            array: ArrayId(array),
            start: VirtAddr(start_page * PAGE),
            bytes: pages * PAGE,
            procs,
        }
    }

    fn summary_two_grouped_arrays() -> AccessSummary {
        AccessSummary {
            arrays: vec![
                ArrayInfo::new(ArrayId(0), "A", VirtAddr(0), 8 * PAGE),
                ArrayInfo::new(ArrayId(1), "B", VirtAddr(8 * PAGE), 8 * PAGE),
            ],
            groups: vec![GroupAccess::new(vec![ArrayId(0), ArrayId(1)])],
            ..Default::default()
        }
    }

    #[test]
    fn order_contains_every_page_once() {
        let p0 = ProcSet::singleton(0);
        let sets = vec![AccessSet {
            procs: p0,
            segments: vec![seg(0, 0, 8, p0), seg(1, 8, 8, p0)],
        }];
        let out = emit_page_order(&sets, &summary_two_grouped_arrays(), &machine(4));
        assert_eq!(out.order.len(), 16);
        let unique: HashSet<u64> = out.order.iter().map(|v| v.0).collect();
        assert_eq!(unique.len(), 16);
    }

    #[test]
    fn conflicting_segments_get_spread_start_colors() {
        // Two 8-page arrays used together by the same CPU, 4 colors: laid
        // out naively both would start at color 0 (8 ≡ 0 mod 4). The
        // cyclic step must separate them — ideally by C/2 = 2.
        let p0 = ProcSet::singleton(0);
        let sets = vec![AccessSet {
            procs: p0,
            segments: vec![seg(0, 0, 8, p0), seg(1, 8, 8, p0)],
        }];
        let out = emit_page_order(&sets, &summary_two_grouped_arrays(), &machine(4));
        let a = out.placements[0].start_color;
        let b = out.placements[1].start_color;
        let d = (b + 4 - a) % 4;
        assert_eq!(d.min(4 - d), 2, "start colors must be maximally apart");
    }

    #[test]
    fn non_conflicting_segments_keep_natural_order() {
        // Different CPUs → condition (2) fails → no rotation.
        let sets = vec![
            AccessSet {
                procs: ProcSet::singleton(0),
                segments: vec![seg(0, 0, 8, ProcSet::singleton(0))],
            },
            AccessSet {
                procs: ProcSet::singleton(1),
                segments: vec![seg(1, 8, 8, ProcSet::singleton(1))],
            },
        ];
        let out = emit_page_order(&sets, &summary_two_grouped_arrays(), &machine(4));
        // Pages in plain ascending order (no rotation anywhere).
        let pages: Vec<u64> = out.order.iter().map(|v| v.0).collect();
        assert_eq!(pages, (0..16).collect::<Vec<_>>());
        assert_eq!(out.placements[1].start_color, 0);
    }

    #[test]
    fn ungrouped_arrays_do_not_rotate() {
        let mut summary = summary_two_grouped_arrays();
        summary.groups.clear();
        let p0 = ProcSet::singleton(0);
        let sets = vec![AccessSet {
            procs: p0,
            segments: vec![seg(0, 0, 8, p0), seg(1, 8, 8, p0)],
        }];
        let out = emit_page_order(&sets, &summary, &machine(4));
        assert_eq!(out.placements[1].start_color, 0, "no conflict, no rotation");
    }

    #[test]
    fn rotation_preserves_segment_membership() {
        let p0 = ProcSet::singleton(0);
        let sets = vec![AccessSet {
            procs: p0,
            segments: vec![seg(0, 0, 8, p0), seg(1, 8, 8, p0)],
        }];
        let out = emit_page_order(&sets, &summary_two_grouped_arrays(), &machine(4));
        // First 8 emitted pages are array A's (vpn 0..8), next 8 array B's,
        // regardless of rotation.
        let first: HashSet<u64> = out.order[..8].iter().map(|v| v.0).collect();
        assert_eq!(first, (0..8).collect::<HashSet<_>>());
        let second: HashSet<u64> = out.order[8..].iter().map(|v| v.0).collect();
        assert_eq!(second, (8..16).collect::<HashSet<_>>());
    }

    #[test]
    fn page_straddling_two_segments_emitted_once() {
        // Segment boundary mid-page: page 1 belongs to both; emitted once.
        let p0 = ProcSet::singleton(0);
        let p1 = ProcSet::singleton(1);
        let sets = vec![
            AccessSet {
                procs: p0,
                segments: vec![UniformSegment {
                    array: ArrayId(0),
                    start: VirtAddr(0),
                    bytes: PAGE + PAGE / 2,
                    procs: p0,
                }],
            },
            AccessSet {
                procs: p1,
                segments: vec![UniformSegment {
                    array: ArrayId(0),
                    start: VirtAddr(PAGE + PAGE / 2),
                    bytes: PAGE / 2 + PAGE,
                    procs: p1,
                }],
            },
        ];
        let out = emit_page_order(&sets, &AccessSummary::default(), &machine(4));
        assert_eq!(out.order.len(), 3);
        let pages: HashSet<u64> = out.order.iter().map(|v| v.0).collect();
        assert_eq!(pages, (0..3).collect::<HashSet<_>>());
    }

    #[test]
    fn three_way_conflict_spreads_all_starts() {
        // Three 8-page arrays, 8 colors, all grouped, same CPU.
        let p0 = ProcSet::singleton(0);
        let summary = AccessSummary {
            arrays: (0..3)
                .map(|i| {
                    ArrayInfo::new(
                        ArrayId(i),
                        format!("a{i}"),
                        VirtAddr(i as u64 * 8 * PAGE),
                        8 * PAGE,
                    )
                })
                .collect(),
            groups: vec![GroupAccess::new(vec![ArrayId(0), ArrayId(1), ArrayId(2)])],
            ..Default::default()
        };
        let sets = vec![AccessSet {
            procs: p0,
            segments: (0..3).map(|i| seg(i, i as u64 * 8, 8, p0)).collect(),
        }];
        let out = emit_page_order(&sets, &summary, &machine(8));
        let starts: Vec<u32> = out.placements.iter().map(|p| p.start_color).collect();
        // All distinct.
        assert_eq!(
            starts.iter().collect::<HashSet<_>>().len(),
            3,
            "start colors must all differ: {starts:?}"
        );
    }
}
