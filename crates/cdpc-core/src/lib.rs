//! Compiler-directed page coloring (CDPC) — the core algorithm of the
//! ASPLOS '96 paper.
//!
//! CDPC reduces external-cache conflict misses in compiler-parallelized
//! programs by letting the compiler direct the operating system's page
//! mapping. The compiler summarizes each array's access pattern (who
//! touches what, and with whom); at start-up, a run-time library combines
//! those summaries with machine parameters (processor count, cache and page
//! geometry) and produces a **preferred color for every virtual page**,
//! passed to the OS as a hint.
//!
//! The hint-generation algorithm (paper §5.2) has five steps, implemented
//! by this crate:
//!
//! 1. **Create the uniform access segments** — split the address space at
//!    array boundaries and wherever the set of accessing processors
//!    changes ([`segments`]).
//! 2. **Order the uniform access sets** — a greedy path heuristic over the
//!    graph whose nodes are processor-set-equivalence classes and whose
//!    edges connect intersecting processor sets ([`ordering`]).
//! 3. **Order the segments within each set** — a second greedy path walk,
//!    over the compiler's group-access graph ([`ordering`]).
//! 4. **Order the pages within a segment cyclically** — rotate each
//!    segment's pages so the starting locations of conflicting arrays land
//!    on different colors ([`cyclic`]).
//! 5. **Assign colors round-robin** over the resulting page order
//!    ([`hints`]).
//!
//! The two objectives (paper §5.2): map each processor's data as
//! contiguously in *physical* address space as possible — eliminating all
//! conflicts whenever one processor's data fits in the cache — and give
//! different colors to the starting locations of arrays used together.
//!
//! # Example
//!
//! ```
//! use cdpc_core::machine::MachineParams;
//! use cdpc_core::summary::{
//!     AccessSummary, ArrayId, ArrayInfo, ArrayPartitioning, GroupAccess,
//!     PartitionDirection, PartitionPolicy,
//! };
//! use cdpc_core::hints::generate_hints;
//! use cdpc_vm::addr::VirtAddr;
//!
//! // Two arrays of 8 pages each, block-partitioned across 2 CPUs and used
//! // in the same loops.
//! let page = 4096u64;
//! let a = ArrayId(0);
//! let b = ArrayId(1);
//! let summary = AccessSummary {
//!     arrays: vec![
//!         ArrayInfo::new(a, "A", VirtAddr(0), 8 * page),
//!         ArrayInfo::new(b, "B", VirtAddr(8 * page), 8 * page),
//!     ],
//!     partitionings: vec![
//!         ArrayPartitioning::new(a, page, 8, PartitionPolicy::Blocked, PartitionDirection::Forward),
//!         ArrayPartitioning::new(b, page, 8, PartitionPolicy::Blocked, PartitionDirection::Forward),
//!     ],
//!     communications: vec![],
//!     groups: vec![GroupAccess::new(vec![a, b])],
//!     shared_arrays: vec![],
//! };
//! let machine = MachineParams::new(2, 4096, 4 * 4096, 1); // 4 colors
//! let hints = generate_hints(&summary, &machine)?;
//! // Every page got a hint, and the two arrays' starting pages differ in
//! // color even though they are 8 pages (= 2 cache sizes) apart.
//! assert_eq!(hints.len(), 16);
//! let table = hints.to_hint_table();
//! assert_ne!(
//!     table.lookup(cdpc_vm::addr::Vpn(0)),
//!     table.lookup(cdpc_vm::addr::Vpn(8)),
//! );
//! # Ok::<(), cdpc_core::CdpcError>(())
//! ```

pub mod analysis;
pub mod cyclic;
pub mod fastmap;
pub mod fingerprint;
pub mod hints;
pub mod machine;
pub mod ordering;
pub mod procset;
pub mod segments;
pub mod summary;

mod error;

pub use error::CdpcError;
pub use fastmap::{DenseSet64, FxMap64, FxSet64};
pub use fingerprint::{Fingerprint, FpHasher};
pub use hints::{generate_hints, generate_hints_with, ColorHints, HintOptions};
pub use machine::MachineParams;
pub use procset::ProcSet;
