//! Machine parameters known only at program start-up.
//!
//! The compiler emits access-pattern summaries symbolically; the run-time
//! library resolves them against the actual machine — processor count, page
//! size, and external-cache geometry — when generating hints (paper §5,
//! stage 2).

use cdpc_vm::addr::{ColorSpace, PageGeometry};

/// The machine description consumed by the hint generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineParams {
    num_cpus: usize,
    geometry: PageGeometry,
    cache_size: usize,
    associativity: usize,
}

impl MachineParams {
    /// Creates machine parameters.
    ///
    /// # Panics
    ///
    /// Panics if `num_cpus` is zero or exceeds 64, if `page_size` is not a
    /// power of two, or if the cache cannot hold one page per way.
    pub fn new(num_cpus: usize, page_size: usize, cache_size: usize, associativity: usize) -> Self {
        assert!((1..=64).contains(&num_cpus), "1..=64 CPUs supported");
        Self {
            num_cpus,
            geometry: PageGeometry::new(page_size),
            cache_size,
            associativity,
        }
    }

    /// Number of processors taking part in the computation.
    pub fn num_cpus(&self) -> usize {
        self.num_cpus
    }

    /// Page geometry.
    pub fn geometry(&self) -> PageGeometry {
        self.geometry
    }

    /// External cache capacity in bytes.
    pub fn cache_size(&self) -> usize {
        self.cache_size
    }

    /// External cache associativity.
    pub fn associativity(&self) -> usize {
        self.associativity
    }

    /// The color space implied by cache and page geometry.
    pub fn colors(&self) -> ColorSpace {
        ColorSpace::new(
            self.cache_size,
            self.geometry.page_size(),
            self.associativity,
        )
    }

    /// Pages needed for `bytes` of data.
    pub fn pages_for(&self, bytes: u64) -> u64 {
        self.geometry.pages_for(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration() {
        let m = MachineParams::new(16, 4096, 1 << 20, 1);
        assert_eq!(m.colors().num_colors(), 256);
        assert_eq!(m.num_cpus(), 16);
        assert_eq!(m.pages_for(14 << 20), 3584); // tomcatv's 14 MB
    }

    #[test]
    fn two_way_halves_colors() {
        let m = MachineParams::new(8, 4096, 1 << 20, 2);
        assert_eq!(m.colors().num_colors(), 128);
    }

    #[test]
    #[should_panic(expected = "CPUs supported")]
    fn rejects_zero_cpus() {
        MachineParams::new(0, 4096, 1 << 20, 1);
    }
}
