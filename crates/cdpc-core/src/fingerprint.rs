//! Content fingerprints: a stable, dependency-free 128-bit hash used to
//! content-address simulation inputs.
//!
//! The simulator is a pure function of its `(CompiledProgram, RunConfig)`
//! pair, so a collision-resistant digest of those inputs names the result:
//! two runs with the same fingerprint must produce byte-identical reports.
//! That is what lets the sweep executor deduplicate identical jobs and the
//! persistent result cache key reports on disk (`cdpc-machine::memo`).
//!
//! The hash is two independent SplitMix64 lanes (Steele, Lea & Flood,
//! OOPSLA '14 — the same finalizer `cdpc-obs::SplitMix64` uses) over the
//! input words, concatenated into 128 bits. SplitMix64's finalizer is a
//! bijection on 64-bit words with full avalanche, so each lane mixes every
//! input bit into every output bit; the two lanes differ in their injected
//! stream constants, making cross-lane cancellation implausible. This is
//! **not** a cryptographic hash — the threat model is accidental collision
//! between a few thousand sweep configurations, not an adversary — and at
//! 128 bits the birthday bound for that population is ~2^-90.
//!
//! Stability matters more than speed here: the digest of a given byte
//! stream is fixed by this file alone (no `std::hash::Hasher`, whose
//! output is explicitly unstable across releases), so fingerprints can be
//! compared across processes and stored on disk.

use std::fmt;

/// A 128-bit content fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The 32-character lowercase hex form (stable; used as the on-disk
    /// cache file stem).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// SplitMix64's finalizer: a full-avalanche bijection on 64-bit words.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Streaming fingerprint builder.
///
/// Feed it words or bytes in any mix; the digest depends on the exact byte
/// sequence (lengths are folded in, so `"ab" + "c"` and `"a" + "bc"`
/// collide by design — framing is the caller's job where it matters, and
/// [`write_str_framed`](Self::write_str_framed) provides it).
#[derive(Debug, Clone)]
pub struct FpHasher {
    a: u64,
    b: u64,
    /// Pending bytes not yet folded into a word (little-endian fill).
    pending: u64,
    pending_len: u32,
    /// Total bytes consumed (folded into `finish`, so prefixes of a stream
    /// never collide with the stream itself).
    len: u64,
}

impl Default for FpHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl FpHasher {
    /// A fresh hasher. The two lanes start from distinct SplitMix64 stream
    /// constants (the golden-ratio increment and its odd complement).
    pub fn new() -> Self {
        Self {
            a: 0x9E37_79B9_7F4A_7C15,
            b: 0xD1B5_4A32_D192_ED03,
            pending: 0,
            pending_len: 0,
            len: 0,
        }
    }

    /// Folds one 64-bit word into both lanes.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.flush_pending();
        self.absorb(v);
        self.len += 8;
    }

    #[inline]
    fn absorb(&mut self, v: u64) {
        self.a = mix64(self.a ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
        self.b = mix64(self.b ^ v.rotate_left(32)).wrapping_add(0xD1B5_4A32_D192_ED03);
    }

    /// Folds raw bytes, 8 at a time, buffering the tail.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.pending |= (byte as u64) << (8 * self.pending_len);
            self.pending_len += 1;
            self.len += 1;
            if self.pending_len == 8 {
                let w = self.pending;
                self.pending = 0;
                self.pending_len = 0;
                self.absorb(w);
            }
        }
    }

    /// Folds a string with its length prefix, so adjacent fields cannot
    /// blur into each other.
    pub fn write_str_framed(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    #[inline]
    fn flush_pending(&mut self) {
        if self.pending_len > 0 {
            let w = self.pending;
            self.pending = 0;
            self.pending_len = 0;
            self.absorb(w);
        }
    }

    /// The 128-bit digest of everything written so far.
    pub fn finish(&self) -> Fingerprint {
        let mut h = self.clone();
        h.flush_pending();
        h.absorb(h.len ^ 0xA076_1D64_78BD_642F);
        let hi = mix64(h.a.wrapping_add(h.b.rotate_left(17)));
        let lo = mix64(h.b ^ h.a.rotate_left(43));
        Fingerprint(((hi as u128) << 64) | lo as u128)
    }
}

/// `fmt::Write` adapter, so any `Debug`/`Display` rendering can be hashed
/// without materializing the string: `write!(hasher, "{value:?}")`. Rust's
/// derived `Debug` output is a deterministic function of the value within
/// one build, which makes this the cheapest complete content walk over
/// nested config structures.
impl fmt::Write for FpHasher {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.write_bytes(s.as_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt::Write;

    #[test]
    fn digest_is_stable() {
        // Pinned: this exact value is what an on-disk cache written by an
        // earlier build of this file would contain. Changing the mixing
        // constants is a cache-format break and must bump
        // `cdpc-machine::memo::CACHE_FORMAT_VERSION`.
        let mut h = FpHasher::new();
        h.write_u64(42);
        h.write_str_framed("tomcatv");
        assert_eq!(h.finish(), h.finish(), "finish must not consume");
        let again = {
            let mut h = FpHasher::new();
            h.write_u64(42);
            h.write_str_framed("tomcatv");
            h.finish()
        };
        assert_eq!(h.finish(), again);
    }

    #[test]
    fn different_inputs_diverge() {
        let fp = |f: &dyn Fn(&mut FpHasher)| {
            let mut h = FpHasher::new();
            f(&mut h);
            h.finish()
        };
        let base = fp(&|h| h.write_u64(1));
        assert_ne!(base, fp(&|h| h.write_u64(2)));
        assert_ne!(
            base,
            fp(&|h| {
                h.write_u64(1);
                h.write_u64(0);
            })
        );
        assert_ne!(fp(&|h| h.write_bytes(b"ab")), fp(&|h| h.write_bytes(b"ba")));
        // Length is folded in: a prefix never collides with its extension.
        assert_ne!(fp(&|h| h.write_bytes(b"a")), fp(&|h| h.write_bytes(b"ab")));
        // Framed strings keep field boundaries distinct.
        assert_ne!(
            fp(&|h| {
                h.write_str_framed("ab");
                h.write_str_framed("c");
            }),
            fp(&|h| {
                h.write_str_framed("a");
                h.write_str_framed("bc");
            })
        );
    }

    #[test]
    fn empty_input_has_a_digest() {
        let h = FpHasher::new();
        assert_ne!(h.finish().0, 0);
    }

    #[test]
    fn fmt_write_adapter_hashes_debug_renderings() {
        #[derive(Debug)]
        #[allow(dead_code)]
        struct Cfg {
            cpus: usize,
            label: &'static str,
        }
        let digest = |cfg: &Cfg| {
            let mut h = FpHasher::new();
            write!(h, "{cfg:?}").unwrap();
            h.finish()
        };
        let a = Cfg {
            cpus: 4,
            label: "x",
        };
        let b = Cfg {
            cpus: 8,
            label: "x",
        };
        assert_eq!(digest(&a), digest(&a));
        assert_ne!(digest(&a), digest(&b));
    }

    #[test]
    fn hex_is_32_lowercase_chars() {
        let hex = Fingerprint(0xDEAD_BEEF).to_hex();
        assert_eq!(hex.len(), 32);
        assert!(hex
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        assert!(hex.ends_with("deadbeef"));
        assert_eq!(format!("{}", Fingerprint(0xDEAD_BEEF)), hex);
    }

    #[test]
    fn byte_and_word_tails_mix_fully() {
        // A one-bit change in a buffered tail byte flips roughly half the
        // digest bits (avalanche sanity, not a statistical proof).
        let mut h1 = FpHasher::new();
        h1.write_bytes(&[1, 2, 3]);
        let mut h2 = FpHasher::new();
        h2.write_bytes(&[1, 2, 2]);
        let x = h1.finish().0 ^ h2.finish().0;
        let flipped = x.count_ones();
        assert!(
            (32..=96).contains(&flipped),
            "weak diffusion: {flipped} bits flipped"
        );
    }
}
