//! A small open-addressing hash map and set specialized for `u64` keys.
//!
//! The simulator's per-reference hot path (directory lookups, L1 line maps,
//! in-flight miss tables) hammers small-to-medium maps keyed by line or
//! page addresses. `std::collections::HashMap` defaults to SipHash-1-3,
//! which is DoS-resistant but costs tens of cycles per lookup — far more
//! than the probe itself. [`FxMap64`] uses the Firefox/rustc "Fx" multiply
//! hash (one wrapping multiply by a 64-bit odd constant) with power-of-two
//! capacity, linear probing, and tombstones. Keys here are simulated
//! addresses, not attacker-controlled input, so hash-flooding resistance
//! buys nothing.
//!
//! Iteration order is **slot order** (a function of the key hashes and the
//! insertion history), which is stable for a given sequence of operations —
//! unlike `std::collections::HashMap`, whose per-process random seed makes
//! iteration order differ between runs. Deterministic simulation must still
//! not depend on slot order (callers sort where order reaches results), but
//! the stability removes one class of run-to-run divergence.

/// 2^64 / golden ratio, forced odd — the classic Fibonacci-hashing
/// multiplier also used by rustc's `FxHasher` for the final mix.
const FX_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

#[inline]
fn fx_hash(key: u64) -> u64 {
    // One multiply plus a rotate to spread high-entropy bits into the low
    // bits used for masking. Line addresses differ mostly in mid bits;
    // the multiply diffuses them across the word.
    key.wrapping_mul(FX_SEED).rotate_left(26)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Empty,
    Tombstone,
    Full(u64),
}

/// An open-addressing hash map from `u64` keys to `V`, tuned for the
/// simulator hot path.
///
/// Supports the subset of the `HashMap` API the simulator uses:
/// [`get`](FxMap64::get), [`get_mut`](FxMap64::get_mut),
/// [`insert`](FxMap64::insert), [`remove`](FxMap64::remove),
/// [`entry_or_insert_with`](FxMap64::entry_or_insert_with),
/// [`iter`](FxMap64::iter), [`retain`](FxMap64::retain).
#[derive(Debug, Clone)]
pub struct FxMap64<V> {
    /// Key slots; `values[i]` is meaningful only when `slots[i]` is `Full`.
    slots: Vec<Slot>,
    values: Vec<Option<V>>,
    /// Number of `Full` slots.
    len: usize,
    /// Number of `Full` + `Tombstone` slots (governs growth).
    used: usize,
}

impl<V> Default for FxMap64<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> FxMap64<V> {
    /// Creates an empty map. Does not allocate until the first insert.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            values: Vec::new(),
            len: 0,
            used: 0,
        }
    }

    /// Creates a map pre-sized for at least `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        let mut m = Self::new();
        if cap > 0 {
            m.rehash(Self::slots_for(cap));
        }
        m
    }

    /// Smallest power-of-two slot count that holds `cap` entries below the
    /// 7/8 load factor.
    fn slots_for(cap: usize) -> usize {
        let needed = cap.max(4) * 8 / 7 + 1;
        needed.next_power_of_two()
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// Index of the slot holding `key`, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.mask();
        let mut i = (fx_hash(key) as usize) & mask;
        loop {
            match self.slots[i] {
                Slot::Empty => return None,
                Slot::Full(k) if k == key => return Some(i),
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Slot where `key` should be inserted: its existing slot, or the first
    /// tombstone/empty slot on its probe path.
    #[inline]
    fn find_insert(&self, key: u64) -> (usize, bool) {
        let mask = self.mask();
        let mut i = (fx_hash(key) as usize) & mask;
        let mut first_tomb: Option<usize> = None;
        loop {
            match self.slots[i] {
                Slot::Empty => return (first_tomb.unwrap_or(i), false),
                Slot::Tombstone => {
                    if first_tomb.is_none() {
                        first_tomb = Some(i);
                    }
                    i = (i + 1) & mask;
                }
                Slot::Full(k) => {
                    if k == key {
                        return (i, true);
                    }
                    i = (i + 1) & mask;
                }
            }
        }
    }

    fn rehash(&mut self, new_slots: usize) {
        let old_slots = std::mem::replace(&mut self.slots, vec![Slot::Empty; new_slots]);
        let old_values = std::mem::take(&mut self.values);
        self.values.resize_with(new_slots, || None);
        self.used = self.len;
        let mask = self.mask();
        for (slot, value) in old_slots.into_iter().zip(old_values) {
            if let Slot::Full(key) = slot {
                let mut i = (fx_hash(key) as usize) & mask;
                while self.slots[i] != Slot::Empty {
                    i = (i + 1) & mask;
                }
                self.slots[i] = Slot::Full(key);
                self.values[i] = value;
            }
        }
    }

    #[inline]
    fn maybe_grow(&mut self) {
        if self.slots.is_empty() {
            self.rehash(8);
        } else if self.used * 8 >= self.slots.len() * 7 {
            // Grow on live entries; a tombstone-heavy table rehashes in
            // place at the same size, reclaiming the dead slots.
            let target = if self.len * 8 >= self.slots.len() * 4 {
                self.slots.len() * 2
            } else {
                self.slots.len()
            };
            self.rehash(target);
        }
    }

    /// Returns a reference to the value for `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key).map(|i| self.values[i].as_ref().unwrap())
    }

    /// Returns a mutable reference to the value for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.find(key).map(|i| self.values[i].as_mut().unwrap())
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Inserts `key → value`, returning the previous value if any.
    #[inline]
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        self.maybe_grow();
        let (i, existed) = self.find_insert(key);
        if existed {
            self.values[i].replace(value)
        } else {
            if self.slots[i] == Slot::Empty {
                self.used += 1;
            }
            self.slots[i] = Slot::Full(key);
            self.values[i] = Some(value);
            self.len += 1;
            None
        }
    }

    /// Removes `key`, returning its value if it was present.
    #[inline]
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let i = self.find(key)?;
        self.slots[i] = Slot::Tombstone;
        self.len -= 1;
        self.values[i].take()
    }

    /// Returns a mutable reference to the value for `key`, inserting
    /// `default()` first if absent (the hot-path replacement for
    /// `HashMap::entry(k).or_insert_with(f)`).
    #[inline]
    pub fn entry_or_insert_with<F: FnOnce() -> V>(&mut self, key: u64, default: F) -> &mut V {
        self.maybe_grow();
        let (i, existed) = self.find_insert(key);
        if !existed {
            if self.slots[i] == Slot::Empty {
                self.used += 1;
            }
            self.slots[i] = Slot::Full(key);
            self.values[i] = Some(default());
            self.len += 1;
        }
        self.values[i].as_mut().unwrap()
    }

    /// Iterates `(key, &value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        self.slots
            .iter()
            .zip(self.values.iter())
            .filter_map(|(s, v)| match s {
                Slot::Full(k) => Some((*k, v.as_ref().unwrap())),
                _ => None,
            })
    }

    /// Iterates `(key, &mut value)` pairs in slot order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut V)> + '_ {
        self.slots
            .iter()
            .zip(self.values.iter_mut())
            .filter_map(|(s, v)| match s {
                Slot::Full(k) => Some((*k, v.as_mut().unwrap())),
                _ => None,
            })
    }

    /// Keeps only the entries for which `f` returns `true`.
    pub fn retain<F: FnMut(u64, &mut V) -> bool>(&mut self, mut f: F) {
        for i in 0..self.slots.len() {
            if let Slot::Full(k) = self.slots[i] {
                if !f(k, self.values[i].as_mut().unwrap()) {
                    self.slots[i] = Slot::Tombstone;
                    self.values[i] = None;
                    self.len -= 1;
                }
            }
        }
    }

    /// Removes all entries, keeping the allocation.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = Slot::Empty;
        }
        for v in &mut self.values {
            *v = None;
        }
        self.len = 0;
        self.used = 0;
    }
}

/// An open-addressing hash set of `u64` keys (an [`FxMap64`] with unit
/// values, kept as its own type for readability at call sites).
#[derive(Debug, Clone, Default)]
pub struct FxSet64 {
    map: FxMap64<()>,
}

impl FxSet64 {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `key` is a member.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(key)
    }

    /// Adds `key`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, key: u64) -> bool {
        self.map.insert(key, ()).is_none()
    }

    /// Removes `key`; returns `true` if it was a member.
    #[inline]
    pub fn remove(&mut self, key: u64) -> bool {
        self.map.remove(key).is_some()
    }

    /// Iterates the members in slot order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.map.iter().map(|(k, _)| k)
    }

    /// Removes all members, keeping the allocation.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// Keys below this index live in the dense bitmap; larger ones spill to a
/// hash set. At one bit per key the dense region tops out at 8 MB, and the
/// bitmap only grows to the largest key actually inserted.
const DENSE_SET_LIMIT: u64 = 1 << 26;

/// A monotone-friendly set of small-ish `u64` indices: a growable bitmap
/// for keys below [`DENSE_SET_LIMIT`], an [`FxSet64`] spill for the rest.
///
/// Built for membership sets keyed by *dense* identifiers — line indices,
/// frame numbers — that are probed on every simulated reference and only
/// ever grow. A hash set of a million 64-bit keys spreads its probes over
/// tens of megabytes (every lookup is a DRAM miss); the bitmap packs the
/// same members into one bit each, so the hot probe loop stays in cache.
/// Arbitrary outliers (e.g. addresses parked near `u64::MAX`) still work:
/// they take the spill path and cost one hash probe.
#[derive(Debug, Clone, Default)]
pub struct DenseSet64 {
    /// Bit `k & 63` of `words[k >> 6]` is set when `k` is a member.
    words: Vec<u64>,
    /// Members at or above [`DENSE_SET_LIMIT`].
    spill: FxSet64,
    /// Total member count across both regions.
    len: usize,
}

impl DenseSet64 {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `key` is a member.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        if key < DENSE_SET_LIMIT {
            self.words
                .get((key >> 6) as usize)
                .is_some_and(|w| w & (1u64 << (key & 63)) != 0)
        } else {
            self.spill.contains(key)
        }
    }

    /// Adds `key`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, key: u64) -> bool {
        let new = if key < DENSE_SET_LIMIT {
            let word = (key >> 6) as usize;
            if word >= self.words.len() {
                self.words.resize(word + 1, 0);
            }
            let bit = 1u64 << (key & 63);
            let was = self.words[word] & bit != 0;
            self.words[word] |= bit;
            !was
        } else {
            self.spill.insert(key)
        };
        self.len += new as usize;
        new
    }

    /// Removes `key`; returns `true` if it was a member.
    #[inline]
    pub fn remove(&mut self, key: u64) -> bool {
        let removed = if key < DENSE_SET_LIMIT {
            match self.words.get_mut((key >> 6) as usize) {
                Some(w) => {
                    let bit = 1u64 << (key & 63);
                    let was = *w & bit != 0;
                    *w &= !bit;
                    was
                }
                None => false,
            }
        } else {
            self.spill.remove(key)
        };
        self.len -= removed as usize;
        removed
    }

    /// Removes all members, keeping the allocations.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.spill.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = FxMap64::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(7, "seven"), None);
        assert_eq!(m.insert(11, "eleven"), None);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(7), Some(&"seven"));
        assert_eq!(m.get(11), Some(&"eleven"));
        assert_eq!(m.get(13), None);
        assert_eq!(m.insert(7, "SEVEN"), Some("seven"));
        assert_eq!(m.len(), 2, "overwrite must not change len");
        assert_eq!(m.remove(7), Some("SEVEN"));
        assert_eq!(m.remove(7), None);
        assert_eq!(m.len(), 1);
        assert!(!m.contains_key(7));
        assert!(m.contains_key(11));
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut m = FxMap64::new();
        m.insert(3, 10u32);
        *m.get_mut(3).unwrap() += 5;
        assert_eq!(m.get(3), Some(&15));
        assert_eq!(m.get_mut(99), None);
    }

    #[test]
    fn entry_or_insert_with_inserts_once() {
        let mut m: FxMap64<Vec<u64>> = FxMap64::new();
        m.entry_or_insert_with(5, Vec::new).push(1);
        m.entry_or_insert_with(5, || panic!("must not rebuild"))
            .push(2);
        assert_eq!(m.get(5), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn growth_preserves_all_entries() {
        let mut m = FxMap64::new();
        // Far past several doublings.
        for k in 0..10_000u64 {
            m.insert(k * 64, k);
        }
        assert_eq!(m.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(m.get(k * 64), Some(&k), "lost key {k}");
        }
        assert_eq!(m.get(10_000 * 64), None);
    }

    #[test]
    fn tombstones_are_reused_without_unbounded_growth() {
        let mut m = FxMap64::new();
        for k in 0..64u64 {
            m.insert(k, k);
        }
        let slots_before = m.slots.len();
        // Churn far more keys through than the table has slots; removals
        // leave tombstones which must be recycled (in place or by
        // same-size rehash), not force doubling.
        for k in 64..100_000u64 {
            m.remove(k - 64);
            m.insert(k, k);
            assert_eq!(m.len(), 64);
        }
        assert_eq!(
            m.slots.len(),
            slots_before,
            "steady-state churn must not grow the table"
        );
        for k in 100_000 - 64..100_000u64 {
            assert_eq!(m.get(k), Some(&k));
        }
    }

    #[test]
    fn removed_key_on_probe_path_does_not_hide_later_keys() {
        // Force collisions by filling enough keys that probe chains form,
        // then delete from the middle of chains and verify lookups still
        // find everything behind the tombstone.
        let mut m = FxMap64::new();
        for k in 0..1000u64 {
            m.insert(k, k);
        }
        for k in (0..1000u64).step_by(3) {
            m.remove(k);
        }
        for k in 0..1000u64 {
            if k % 3 == 0 {
                assert_eq!(m.get(k), None);
            } else {
                assert_eq!(m.get(k), Some(&k));
            }
        }
    }

    #[test]
    fn iteration_visits_each_live_entry_exactly_once() {
        let mut m = FxMap64::new();
        for k in 0..100u64 {
            m.insert(k * 4096, k);
        }
        for k in 0..50u64 {
            m.remove(k * 4096);
        }
        let mut seen: Vec<u64> = m.iter().map(|(k, _)| k).collect();
        seen.sort_unstable();
        let want: Vec<u64> = (50..100u64).map(|k| k * 4096).collect();
        assert_eq!(seen, want);
    }

    #[test]
    fn iter_mut_and_retain() {
        let mut m = FxMap64::new();
        for k in 0..10u64 {
            m.insert(k, k as u32);
        }
        for (_, v) in m.iter_mut() {
            *v *= 2;
        }
        m.retain(|k, _| k % 2 == 0);
        assert_eq!(m.len(), 5);
        assert_eq!(m.get(4), Some(&8));
        assert_eq!(m.get(5), None);
    }

    #[test]
    fn clear_keeps_capacity_and_empties() {
        let mut m = FxMap64::new();
        for k in 0..100u64 {
            m.insert(k, k);
        }
        let slots = m.slots.len();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.slots.len(), slots);
        assert_eq!(m.get(1), None);
        m.insert(1, 1);
        assert_eq!(m.get(1), Some(&1));
    }

    #[test]
    fn with_capacity_avoids_early_growth() {
        let mut m: FxMap64<u64> = FxMap64::with_capacity(100);
        let slots = m.slots.len();
        assert!(slots >= 100);
        for k in 0..100u64 {
            m.insert(k, k);
        }
        assert_eq!(m.slots.len(), slots, "pre-sized map must not grow");
    }

    #[test]
    fn extreme_keys() {
        let mut m = FxMap64::new();
        m.insert(0, "zero");
        m.insert(u64::MAX, "max");
        m.insert(u64::MAX / 2, "mid");
        assert_eq!(m.get(0), Some(&"zero"));
        assert_eq!(m.get(u64::MAX), Some(&"max"));
        assert_eq!(m.get(u64::MAX / 2), Some(&"mid"));
    }

    #[test]
    fn set_basics() {
        let mut s = FxSet64::new();
        assert!(s.insert(42));
        assert!(!s.insert(42), "second insert of same key returns false");
        assert!(s.contains(42));
        assert_eq!(s.len(), 1);
        assert!(s.remove(42));
        assert!(!s.remove(42));
        assert!(s.is_empty());
        for k in 0..1000u64 {
            s.insert(k * 64);
        }
        assert_eq!(s.len(), 1000);
        let mut all: Vec<u64> = s.iter().collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000u64).map(|k| k * 64).collect::<Vec<_>>());
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn dense_set_basics() {
        let mut s = DenseSet64::new();
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(!s.insert(64), "second insert of same key returns false");
        assert!(s.contains(0) && s.contains(63) && s.contains(64));
        assert!(!s.contains(65));
        assert_eq!(s.len(), 3);
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert!(!s.contains(63));
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(0));
    }

    #[test]
    fn dense_set_spills_huge_keys_without_huge_allocations() {
        let mut s = DenseSet64::new();
        for k in [u64::MAX, u64::MAX / 2, DENSE_SET_LIMIT, DENSE_SET_LIMIT - 1] {
            assert!(s.insert(k));
            assert!(s.contains(k));
        }
        assert_eq!(s.len(), 4);
        // The dense bitmap only covers keys below the limit; a key just
        // under it bounds the allocation at the 8 MB ceiling, and the
        // huge keys must not have grown it further.
        assert!(s.words.len() as u64 <= DENSE_SET_LIMIT / 64);
        assert_eq!(s.spill.len(), 3);
        assert!(s.remove(u64::MAX));
        assert!(!s.contains(u64::MAX));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn dense_set_grows_only_to_largest_inserted_key() {
        let mut s = DenseSet64::new();
        for k in 0..10_000u64 {
            s.insert(k);
        }
        assert_eq!(s.len(), 10_000);
        assert!(s.words.len() <= 10_000 / 64 + 1);
        for k in 0..10_000u64 {
            assert!(s.contains(k), "{k} must be a member");
        }
        assert!(!s.contains(10_000));
    }
}
