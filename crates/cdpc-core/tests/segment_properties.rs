//! Property tests for uniform-access-segment construction: for arbitrary
//! partitionings and communication patterns, segments must tile each
//! analyzable array exactly, be maximal, and carry processor sets
//! consistent with the partition arithmetic.
//!
//! Cases are drawn from a seeded [`SplitMix64`], one seed per case, so
//! failures reproduce exactly by seed number.

use cdpc_core::machine::MachineParams;
use cdpc_core::segments::{build_segments, group_into_sets};
use cdpc_core::summary::{
    AccessSummary, ArrayId, ArrayInfo, ArrayPartitioning, CommunicationPattern,
    CommunicationSummary, PartitionDirection, PartitionPolicy,
};
use cdpc_obs::SplitMix64;
use cdpc_vm::addr::VirtAddr;

#[derive(Debug, Clone)]
struct Case {
    units: u64,
    unit_bytes: u64,
    policy: PartitionPolicy,
    direction: PartitionDirection,
    comm: Option<(CommunicationPattern, u64)>,
    cpus: usize,
}

fn random_case(rng: &mut SplitMix64) -> Case {
    const UNIT_BYTES: [u64; 4] = [256, 1024, 4096, 8192];
    Case {
        units: rng.range(2, 64),
        unit_bytes: UNIT_BYTES[rng.index(UNIT_BYTES.len())],
        policy: if rng.chance(1, 2) {
            PartitionPolicy::Even
        } else {
            PartitionPolicy::Blocked
        },
        direction: if rng.chance(1, 2) {
            PartitionDirection::Reverse
        } else {
            PartitionDirection::Forward
        },
        comm: rng.chance(1, 2).then(|| {
            (
                if rng.chance(1, 2) {
                    CommunicationPattern::Rotate
                } else {
                    CommunicationPattern::Shift
                },
                rng.range(1, 3),
            )
        }),
        cpus: rng.range(1, 16) as usize,
    }
}

fn summary_of(case: &Case) -> AccessSummary {
    let id = ArrayId(0);
    let bytes = case.units * case.unit_bytes;
    AccessSummary {
        arrays: vec![ArrayInfo::new(id, "A", VirtAddr(0x40000), bytes)],
        partitionings: vec![ArrayPartitioning::new(
            id,
            case.unit_bytes,
            case.units,
            case.policy,
            case.direction,
        )],
        communications: case
            .comm
            .map(|(pattern, width_units)| {
                vec![CommunicationSummary {
                    array: id,
                    pattern,
                    width_units,
                }]
            })
            .unwrap_or_default(),
        groups: vec![],
        shared_arrays: vec![],
    }
}

/// Segments tile the array: contiguous, non-overlapping, complete.
#[test]
fn segments_tile_the_array() {
    for seed in 0..128u64 {
        let case = random_case(&mut SplitMix64::new(seed));
        let summary = summary_of(&case);
        let machine = MachineParams::new(case.cpus, 4096, 64 * 4096, 1);
        let segments = build_segments(&summary, &machine).unwrap();
        let bytes = case.units * case.unit_bytes;
        let mut cursor = 0x40000u64;
        for seg in &segments {
            assert_eq!(seg.start.0, cursor, "seed {seed}: gap or overlap");
            assert!(!seg.procs.is_empty(), "seed {seed}: empty processor set");
            cursor = seg.end().0;
        }
        assert_eq!(cursor, 0x40000 + bytes, "seed {seed}: incomplete coverage");
    }
}

/// Maximality: adjacent segments always differ in processor set.
#[test]
fn segments_are_maximal() {
    for seed in 0..128u64 {
        let case = random_case(&mut SplitMix64::new(seed));
        let summary = summary_of(&case);
        let machine = MachineParams::new(case.cpus, 4096, 64 * 4096, 1);
        let segments = build_segments(&summary, &machine).unwrap();
        for w in segments.windows(2) {
            assert_ne!(w[0].procs, w[1].procs, "seed {seed}: mergeable neighbors");
        }
    }
}

/// Without communication, each unit's owner (per partition arithmetic)
/// is a member of the covering segment's processor set.
#[test]
fn ownership_matches_partition_arithmetic() {
    for seed in 0..128u64 {
        let case = random_case(&mut SplitMix64::new(seed));
        if case.comm.is_some() {
            continue;
        }
        let summary = summary_of(&case);
        let machine = MachineParams::new(case.cpus, 4096, 64 * 4096, 1);
        let segments = build_segments(&summary, &machine).unwrap();
        let part = &summary.partitionings[0];
        for unit in 0..case.units {
            let byte = 0x40000 + unit * case.unit_bytes + case.unit_bytes / 2;
            let seg = segments
                .iter()
                .find(|s| byte >= s.start.0 && byte < s.end().0)
                .expect("covered");
            if let Some(owner) = part.owner_of(unit, case.cpus) {
                assert!(
                    seg.procs.contains(owner),
                    "seed {seed}: unit {unit} owner {owner} missing from {}",
                    seg.procs
                );
            }
        }
    }
}

/// Grouping by processor set preserves every segment exactly once.
#[test]
fn grouping_is_a_partition() {
    for seed in 0..128u64 {
        let case = random_case(&mut SplitMix64::new(seed));
        let summary = summary_of(&case);
        let machine = MachineParams::new(case.cpus, 4096, 64 * 4096, 1);
        let segments = build_segments(&summary, &machine).unwrap();
        let n = segments.len();
        let total_bytes: u64 = segments.iter().map(|s| s.bytes).sum();
        let sets = group_into_sets(segments);
        let grouped_n: usize = sets.iter().map(|s| s.segments.len()).sum();
        let grouped_bytes: u64 = sets.iter().map(|s| s.total_bytes()).sum();
        assert_eq!(n, grouped_n, "seed {seed}");
        assert_eq!(total_bytes, grouped_bytes, "seed {seed}");
        // Distinct sets have distinct processor sets.
        for i in 0..sets.len() {
            for j in i + 1..sets.len() {
                assert_ne!(sets[i].procs, sets[j].procs, "seed {seed}");
            }
        }
    }
}
