//! Property tests for uniform-access-segment construction: for arbitrary
//! partitionings and communication patterns, segments must tile each
//! analyzable array exactly, be maximal, and carry processor sets
//! consistent with the partition arithmetic.

use proptest::prelude::*;

use cdpc_core::machine::MachineParams;
use cdpc_core::segments::{build_segments, group_into_sets};
use cdpc_core::summary::{
    AccessSummary, ArrayId, ArrayInfo, ArrayPartitioning, CommunicationPattern,
    CommunicationSummary, PartitionDirection, PartitionPolicy,
};
use cdpc_vm::addr::VirtAddr;

#[derive(Debug, Clone)]
struct Case {
    units: u64,
    unit_bytes: u64,
    policy: PartitionPolicy,
    direction: PartitionDirection,
    comm: Option<(CommunicationPattern, u64)>,
    cpus: usize,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        2u64..=64,
        prop::sample::select(vec![256u64, 1024, 4096, 8192]),
        any::<bool>(),
        any::<bool>(),
        prop::option::of((any::<bool>(), 1u64..=3)),
        1usize..=16,
    )
        .prop_map(|(units, unit_bytes, even, rev, comm, cpus)| Case {
            units,
            unit_bytes,
            policy: if even {
                PartitionPolicy::Even
            } else {
                PartitionPolicy::Blocked
            },
            direction: if rev {
                PartitionDirection::Reverse
            } else {
                PartitionDirection::Forward
            },
            comm: comm.map(|(rot, w)| {
                (
                    if rot {
                        CommunicationPattern::Rotate
                    } else {
                        CommunicationPattern::Shift
                    },
                    w,
                )
            }),
            cpus,
        })
}

fn summary_of(case: &Case) -> AccessSummary {
    let id = ArrayId(0);
    let bytes = case.units * case.unit_bytes;
    AccessSummary {
        arrays: vec![ArrayInfo::new(id, "A", VirtAddr(0x40000), bytes)],
        partitionings: vec![ArrayPartitioning::new(
            id,
            case.unit_bytes,
            case.units,
            case.policy,
            case.direction,
        )],
        communications: case
            .comm
            .map(|(pattern, width_units)| {
                vec![CommunicationSummary {
                    array: id,
                    pattern,
                    width_units,
                }]
            })
            .unwrap_or_default(),
        groups: vec![],
        shared_arrays: vec![],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Segments tile the array: contiguous, non-overlapping, complete.
    #[test]
    fn segments_tile_the_array(case in arb_case()) {
        let summary = summary_of(&case);
        let machine = MachineParams::new(case.cpus, 4096, 64 * 4096, 1);
        let segments = build_segments(&summary, &machine).unwrap();
        let bytes = case.units * case.unit_bytes;
        let mut cursor = 0x40000u64;
        for seg in &segments {
            prop_assert_eq!(seg.start.0, cursor, "gap or overlap");
            prop_assert!(!seg.procs.is_empty(), "empty processor set");
            cursor = seg.end().0;
        }
        prop_assert_eq!(cursor, 0x40000 + bytes, "incomplete coverage");
    }

    /// Maximality: adjacent segments always differ in processor set.
    #[test]
    fn segments_are_maximal(case in arb_case()) {
        let summary = summary_of(&case);
        let machine = MachineParams::new(case.cpus, 4096, 64 * 4096, 1);
        let segments = build_segments(&summary, &machine).unwrap();
        for w in segments.windows(2) {
            prop_assert_ne!(w[0].procs, w[1].procs, "mergeable neighbors");
        }
    }

    /// Without communication, each unit's owner (per partition arithmetic)
    /// is a member of the covering segment's processor set.
    #[test]
    fn ownership_matches_partition_arithmetic(case in arb_case()) {
        prop_assume!(case.comm.is_none());
        let summary = summary_of(&case);
        let machine = MachineParams::new(case.cpus, 4096, 64 * 4096, 1);
        let segments = build_segments(&summary, &machine).unwrap();
        let part = &summary.partitionings[0];
        for unit in 0..case.units {
            let byte = 0x40000 + unit * case.unit_bytes + case.unit_bytes / 2;
            let seg = segments
                .iter()
                .find(|s| byte >= s.start.0 && byte < s.end().0)
                .expect("covered");
            if let Some(owner) = part.owner_of(unit, case.cpus) {
                prop_assert!(
                    seg.procs.contains(owner),
                    "unit {} owner {} missing from {}",
                    unit,
                    owner,
                    seg.procs
                );
            }
        }
    }

    /// Grouping by processor set preserves every segment exactly once.
    #[test]
    fn grouping_is_a_partition(case in arb_case()) {
        let summary = summary_of(&case);
        let machine = MachineParams::new(case.cpus, 4096, 64 * 4096, 1);
        let segments = build_segments(&summary, &machine).unwrap();
        let n = segments.len();
        let total_bytes: u64 = segments.iter().map(|s| s.bytes).sum();
        let sets = group_into_sets(segments);
        let grouped_n: usize = sets.iter().map(|s| s.segments.len()).sum();
        let grouped_bytes: u64 = sets.iter().map(|s| s.total_bytes()).sum();
        prop_assert_eq!(n, grouped_n);
        prop_assert_eq!(total_bytes, grouped_bytes);
        // Distinct sets have distinct processor sets.
        for i in 0..sets.len() {
            for j in i + 1..sets.len() {
                prop_assert_ne!(sets[i].procs, sets[j].procs);
            }
        }
    }
}
