//! Compiler-directed page coloring for multiprocessors — facade crate.
//!
//! This crate re-exports the entire CDPC stack, a from-scratch reproduction
//! of *Compiler-Directed Page Coloring for Multiprocessors* (Bugnion,
//! Anderson, Mowry, Rosenblum, Lam — ASPLOS 1996):
//!
//! * [`core`] — the paper's contribution: access-pattern summaries and the
//!   five-step page-coloring hint algorithm.
//! * [`compiler`] — the SUIF-like parallelizing compiler substrate (loop
//!   nest IR, parallelization, summary generation, prefetch insertion, data
//!   layout).
//! * [`vm`] — the OS substrate (physical page allocator, page tables, page
//!   coloring / bin hopping / hint-driven mapping policies).
//! * [`memsim`] — the SimOS-like memory hierarchy simulator (caches, TLB,
//!   bus, MESI coherence, miss classification, prefetch slots).
//! * [`workloads`] — SPEC95fp-like synthetic workload models.
//! * [`machine`] — whole-machine composition, run loop, and reports.
//! * [`obs`] — observability: probe events, interval metrics, JSON/CSV/
//!   Chrome-trace exporters, simulator self-profiling.
//! * [`analyze`] — static race / false-sharing / cache-conflict lints over
//!   the compiler summaries, plus a runtime MESI coherence sanitizer.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end run that compiles a
//! workload, generates coloring hints, and compares mapping policies.

pub use cdpc_analyze as analyze;
pub use cdpc_compiler as compiler;
pub use cdpc_core as core;
pub use cdpc_machine as machine;
pub use cdpc_memsim as memsim;
pub use cdpc_obs as obs;
pub use cdpc_vm as vm;
pub use cdpc_workloads as workloads;
